//! Leading One Detector (Table 1 rows 1 & 2–3).
//!
//! Per the paper's §6: the LOD "looks for the first zero bit from the
//! left". Its cubes are products of *positive* literals with one
//! complement, so the Reed–Muller form has only two terms per position —
//! which is exactly why the paper can push the LOD to 32 bits while the
//! 32-bit LZD's RM form blows up.

use crate::words::word;
use pd_anf::{Anf, Var, VarPool};
use pd_netlist::{Cube, Netlist, Sop};

/// Leading-one-detector benchmark (first **zero** from the left).
#[derive(Clone, Debug)]
pub struct Lod {
    /// Input width in bits.
    pub width: usize,
    /// Variable pool holding the input word.
    pub pool: VarPool,
    /// Input bits, LSB first.
    pub bits: Vec<Var>,
}

impl Lod {
    /// Creates the benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2`.
    pub fn new(width: usize) -> Self {
        assert!(width >= 2, "LOD needs at least two bits");
        let mut pool = VarPool::new();
        let bits = word(&mut pool, "a", 0, width);
        Lod { width, pool, bits }
    }

    /// Number of output bits.
    pub fn out_bits(&self) -> usize {
        usize::BITS as usize - (self.width - 1).leading_zeros() as usize
    }

    /// Cube `x_i`: bits left of position `i` are 1, bit `i` is 0.
    fn x_cube(&self, i: usize) -> Cube {
        let w = self.width;
        let mut lits = Vec::with_capacity(i + 1);
        for j in 0..i {
            lits.push((self.bits[w - 1 - j], true));
        }
        lits.push((self.bits[w - 1 - i], false));
        Cube(lits)
    }

    /// SOP description per output bit (disjoint cubes).
    pub fn sop(&self) -> Vec<(String, Sop)> {
        (0..self.out_bits())
            .map(|b| {
                let cubes = (0..self.width)
                    .filter(|i| i >> b & 1 == 1)
                    .map(|i| self.x_cube(i))
                    .collect();
                (format!("z{b}"), Sop(cubes))
            })
            .collect()
    }

    /// Reed–Muller specification. Each `x_i` contributes only two
    /// monomials (`∏a_j ⊕ ∏a_j·a_i`), keeping the spec small even at
    /// 32 bits.
    pub fn spec(&self) -> Vec<(String, Anf)> {
        self.sop()
            .into_iter()
            .map(|(name, sop)| (name, sop.to_anf_disjoint()))
            .collect()
    }

    /// The flat SOP baseline netlist.
    pub fn sop_netlist(&self) -> Netlist {
        let mut nl = Netlist::new();
        for (name, sop) in self.sop() {
            let node = sop.synthesize(&mut nl);
            nl.set_output(&name, node);
        }
        nl
    }

    /// Reference: position from the left of the first 0 bit (0 if none —
    /// consistent with the missing all-ones cube, as in the LZD).
    pub fn reference(&self, value: u64) -> u64 {
        for i in 0..self.width {
            if value >> (self.width - 1 - i) & 1 == 0 {
                return i as u64;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_netlist::sim::check_equiv_anf;

    #[test]
    fn spec_matches_reference_exhaustively() {
        let lod = Lod::new(8);
        let spec = lod.spec();
        for value in 0..256u64 {
            let want = lod.reference(value);
            let mut got = 0u64;
            for (b, (_, expr)) in spec.iter().enumerate() {
                if expr.eval(|v| {
                    let idx = lod.bits.iter().position(|&q| q == v).unwrap();
                    value >> idx & 1 == 1
                }) {
                    got |= 1 << b;
                }
            }
            assert_eq!(got, want, "value {value:#010b}");
        }
    }

    #[test]
    fn sop_netlist_equals_spec() {
        let lod = Lod::new(16);
        let nl = lod.sop_netlist();
        assert_eq!(check_equiv_anf(&nl, &lod.spec(), 64, 3), None);
    }

    #[test]
    fn rm_form_stays_small_at_32_bits() {
        let lod = Lod::new(32);
        let total: usize = lod.spec().iter().map(|(_, e)| e.term_count()).sum();
        assert!(
            total < 200,
            "paper: the 32-bit LOD RM form is tractable (got {total} terms)"
        );
    }

    #[test]
    fn lzd_vs_lod_asymmetry() {
        // Same width: LZD's RM form must be far larger than LOD's.
        let lod: usize = Lod::new(16).spec().iter().map(|(_, e)| e.term_count()).sum();
        let lzd: usize = crate::lzd::Lzd::new(16)
            .spec()
            .iter()
            .map(|(_, e)| e.term_count())
            .sum();
        assert!(lzd > 100 * lod);
    }
}
