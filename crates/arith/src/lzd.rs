//! Leading Zero Detector (paper §1, Figs. 1–2; Table 1 rows 1–2).
//!
//! The LZD takes a `w`-bit integer `a[w-1..0]` (bit `w-1` is the leftmost)
//! and outputs the 0-based position, counted from the left, of the first
//! `1` bit; all-zero inputs yield 0 (as in the paper's Fig. 1, which has
//! no `x` term for that case).
//!
//! Three implementations:
//! * [`Lzd::spec`] — the Reed–Muller form of the straightforward
//!   description (input to Progressive Decomposition);
//! * [`Lzd::sop_netlist`] — the flat Fig. 1 structure (the paper's
//!   "Unoptimised (SOP)" baseline);
//! * [`Lzd::oklobdzija_netlist`] — the hierarchical 4-bit-block design of
//!   Fig. 2, against which the paper qualitatively compares PD's output.

use crate::words::word;
use pd_anf::{Anf, Var, VarPool};
use pd_netlist::{Cube, Netlist, NodeId, Sop};

/// Leading-zero-detector benchmark with its variable pool.
#[derive(Clone, Debug)]
pub struct Lzd {
    /// Input width in bits.
    pub width: usize,
    /// Variable pool holding the input word.
    pub pool: VarPool,
    /// Input bits, LSB first (`bits[width-1]` is the leftmost bit).
    pub bits: Vec<Var>,
}

impl Lzd {
    /// Creates the benchmark for a given width.
    ///
    /// # Panics
    ///
    /// Panics if `width < 2`.
    pub fn new(width: usize) -> Self {
        assert!(width >= 2, "LZD needs at least two bits");
        let mut pool = VarPool::new();
        let bits = word(&mut pool, "a", 0, width);
        Lzd { width, pool, bits }
    }

    /// Number of output bits (`⌈log₂ width⌉`).
    pub fn out_bits(&self) -> usize {
        usize::BITS as usize - (self.width - 1).leading_zeros() as usize
    }

    /// The "leading one at position `i` from the left" cube `x_i`:
    /// complement literals on all higher bits, positive on the bit itself.
    fn x_cube(&self, i: usize) -> Cube {
        let w = self.width;
        let mut lits = Vec::with_capacity(i + 1);
        for j in 0..i {
            lits.push((self.bits[w - 1 - j], false));
        }
        lits.push((self.bits[w - 1 - i], true));
        Cube(lits)
    }

    /// SOP description of each output bit (Fig. 1): `z_b` is the OR of the
    /// disjoint cubes `x_i` with bit `b` of `i` set.
    pub fn sop(&self) -> Vec<(String, Sop)> {
        (0..self.out_bits())
            .map(|b| {
                let cubes = (0..self.width)
                    .filter(|i| i >> b & 1 == 1)
                    .map(|i| self.x_cube(i))
                    .collect();
                (format!("z{b}"), Sop(cubes))
            })
            .collect()
    }

    /// The Reed–Muller specification (cubes are disjoint, so OR = XOR).
    pub fn spec(&self) -> Vec<(String, Anf)> {
        self.sop()
            .into_iter()
            .map(|(name, sop)| (name, sop.to_anf_disjoint()))
            .collect()
    }

    /// The flat Fig. 1 netlist: shared `x_i` cones, OR trees per output.
    pub fn sop_netlist(&self) -> Netlist {
        let mut nl = Netlist::new();
        for (name, sop) in self.sop() {
            let node = sop.synthesize(&mut nl);
            nl.set_output(&name, node);
        }
        nl
    }

    /// Oklobdzija's hierarchical design (Fig. 2): 4-bit blocks computing
    /// `(V, P1, P0)`, combined by a priority mux network.
    ///
    /// # Panics
    ///
    /// Panics unless `width` is a positive multiple of 4.
    pub fn oklobdzija_netlist(&self) -> Netlist {
        assert!(
            self.width.is_multiple_of(4) && self.width >= 4,
            "the Fig. 2 construction uses 4-bit blocks"
        );
        let w = self.width;
        let mut nl = Netlist::new();
        let n_blocks = w / 4;
        // Block q covers bits a[w-1-4q] (leftmost of block) .. a[w-4-4q].
        let mut v_nodes = Vec::with_capacity(n_blocks);
        let mut p0_nodes = Vec::with_capacity(n_blocks);
        let mut p1_nodes = Vec::with_capacity(n_blocks);
        for q in 0..n_blocks {
            let b: Vec<NodeId> = (0..4)
                .map(|j| nl.input(self.bits[w - 1 - 4 * q - j]))
                .collect();
            // b[0] is the block's leftmost bit.
            let or01 = nl.or(b[0], b[1]);
            let or23 = nl.or(b[2], b[3]);
            let v = nl.or(or01, or23);
            // P1P0 = position of leading one inside the block.
            let n0 = nl.not(b[0]);
            let n1 = nl.not(b[1]);
            let n2 = nl.not(b[2]);
            // P1 = ¬b0·¬b1·(b2 ∨ b3)  (leading one in the right half)
            let right_any = nl.or(b[2], b[3]);
            let n0n1 = nl.and(n0, n1);
            let p1 = nl.and(n0n1, right_any);
            // P0 = ¬b0·(b1 ∨ ¬b2·b3)
            let n2b3 = nl.and(n2, b[3]);
            let inner = nl.or(b[1], n2b3);
            let p0 = nl.and(n0, inner);
            v_nodes.push(v);
            p0_nodes.push(p0);
            p1_nodes.push(p1);
        }
        // Priority selection across blocks: first valid block wins.
        // Block index bits (z from bit 2 upward) and P mux chains.
        let mut z_hi: Vec<NodeId> = Vec::new();
        let idx_bits = usize::BITS as usize - (n_blocks - 1).leading_zeros() as usize;
        let zero = nl.constant(false);
        for bit in 0..idx_bits.max(1) {
            if n_blocks == 1 {
                z_hi.push(zero);
                continue;
            }
            // Priority encoder: value of block-index bit for the first
            // valid block, 0 if none.
            let mut acc = zero;
            for q in (0..n_blocks).rev() {
                let bit_val = if q >> bit & 1 == 1 {
                    nl.constant(true)
                } else {
                    zero
                };
                acc = nl.mux(v_nodes[q], acc, bit_val);
            }
            z_hi.push(acc);
        }
        // Low two bits: P of the first valid block.
        let mut z0 = zero;
        let mut z1 = zero;
        for q in (0..n_blocks).rev() {
            z0 = nl.mux(v_nodes[q], z0, p0_nodes[q]);
            z1 = nl.mux(v_nodes[q], z1, p1_nodes[q]);
        }
        nl.set_output("z0", z0);
        nl.set_output("z1", z1);
        for (i, &z) in z_hi.iter().enumerate() {
            if 2 + i < self.out_bits() {
                nl.set_output(&format!("z{}", 2 + i), z);
            }
        }
        nl
    }

    /// Reference model: position from the left of the first 1 bit (0 for
    /// all-zero inputs).
    pub fn reference(&self, value: u64) -> u64 {
        for i in 0..self.width {
            if value >> (self.width - 1 - i) & 1 == 1 {
                return i as u64;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::run_ints;
    use pd_netlist::sim::check_equiv_anf;

    #[test]
    fn spec_matches_reference_exhaustively() {
        let lzd = Lzd::new(8);
        let spec = lzd.spec();
        for value in 0..256u64 {
            let want = lzd.reference(value);
            let mut got = 0u64;
            for (b, (_, expr)) in spec.iter().enumerate() {
                if expr.eval(|v| {
                    let idx = lzd.bits.iter().position(|&q| q == v).unwrap();
                    value >> idx & 1 == 1
                }) {
                    got |= 1 << b;
                }
            }
            assert_eq!(got, want, "value {value:#010b}");
        }
    }

    #[test]
    fn sop_netlist_equals_spec() {
        let lzd = Lzd::new(16);
        let nl = lzd.sop_netlist();
        assert_eq!(check_equiv_anf(&nl, &lzd.spec(), 64, 3), None);
    }

    #[test]
    fn oklobdzija_matches_reference() {
        let lzd = Lzd::new(16);
        let nl = lzd.oklobdzija_netlist();
        let inputs: Vec<u64> = (0..64).map(|i| (1u64 << (i % 16)) | (i as u64)).collect();
        let got = run_ints(&nl, &[&lzd.bits], std::slice::from_ref(&inputs), "z", lzd.out_bits());
        for (lane, &v) in inputs.iter().enumerate() {
            let masked = v & 0xFFFF;
            assert_eq!(got[lane], lzd.reference(masked), "input {masked:#018b}");
        }
    }

    #[test]
    fn oklobdzija_equals_spec_exhaustively() {
        let lzd = Lzd::new(16);
        let nl = lzd.oklobdzija_netlist();
        assert_eq!(check_equiv_anf(&nl, &lzd.spec(), 64, 5), None);
    }

    #[test]
    fn spec_size_grows_like_the_paper_says() {
        // The RM form of the LZD grows exponentially (the reason the
        // paper cannot run the 32-bit LZD).
        let small: usize = Lzd::new(8).spec().iter().map(|(_, e)| e.term_count()).sum();
        let big: usize = Lzd::new(16).spec().iter().map(|(_, e)| e.term_count()).sum();
        assert!(big > 16 * small);
    }

    #[test]
    fn out_bits() {
        assert_eq!(Lzd::new(16).out_bits(), 4);
        assert_eq!(Lzd::new(32).out_bits(), 5);
        assert_eq!(Lzd::new(8).out_bits(), 3);
    }
}
