//! Small multipliers (extension experiment; paper references \[10\], \[13\]).
//!
//! Wallace's multiplier and Stelling et al.'s optimal partial-product
//! compressors motivate the paper's compressor-tree comparisons. This
//! module provides `w×w` multipliers as an *extension* benchmark:
//! Progressive Decomposition is fed the exact Reed–Muller form of the
//! product bits (tractable for small `w`) and compared against an array
//! multiplier and a Wallace/TGA-style compressor-tree multiplier.

use crate::compressor::{tga_reduce, BitMatrix};
use crate::words::word;
use pd_anf::{Anf, Var, VarPool};
use pd_netlist::{Netlist, NodeId};

/// `w × w` unsigned multiplier benchmark.
#[derive(Clone, Debug)]
pub struct Multiplier {
    /// Operand width.
    pub width: usize,
    /// Variable pool.
    pub pool: VarPool,
    /// Operand A bits, LSB first.
    pub a: Vec<Var>,
    /// Operand B bits, LSB first.
    pub b: Vec<Var>,
}

impl Multiplier {
    /// Creates the benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0);
        let mut pool = VarPool::new();
        let a = word(&mut pool, "a", 0, width);
        let b = word(&mut pool, "b", 1, width);
        Multiplier { width, pool, a, b }
    }

    /// Number of product bits (`2w`).
    pub fn out_bits(&self) -> usize {
        2 * self.width
    }

    /// Reed–Muller specification of every product bit, via symbolic
    /// accumulation of the partial products (exponential in `w`; intended
    /// for `w ≤ 6`).
    pub fn spec(&self) -> Vec<(String, Anf)> {
        // Accumulate partial products column by column with symbolic
        // carries: columns[c] = list of ANF addends of weight 2^c.
        let w = self.width;
        let mut columns: Vec<Vec<Anf>> = vec![Vec::new(); 2 * w];
        for i in 0..w {
            for j in 0..w {
                columns[i + j].push(Anf::var(self.a[i]).and(&Anf::var(self.b[j])));
            }
        }
        let mut out = Vec::with_capacity(2 * w);
        for c in 0..2 * w {
            // Reduce the column with full-adder algebra, pushing carries.
            while columns[c].len() > 2 {
                let x = columns[c].remove(0);
                let y = columns[c].remove(0);
                let z = columns[c].remove(0);
                let sum = x.xor(&y).xor(&z);
                let carry = x.and(&y).xor(&y.and(&z)).xor(&z.and(&x));
                columns[c].push(sum);
                if c + 1 < 2 * w {
                    columns[c + 1].push(carry);
                }
            }
            let bit = match columns[c].len() {
                0 => Anf::zero(),
                1 => columns[c][0].clone(),
                _ => {
                    let x = columns[c][0].clone();
                    let y = columns[c][1].clone();
                    if c + 1 < 2 * w {
                        columns[c + 1].push(x.and(&y));
                    }
                    x.xor(&y)
                }
            };
            out.push((format!("p{c}"), bit));
        }
        out
    }

    /// Array multiplier: rows of partial products added by ripple adders.
    pub fn array_netlist(&self) -> Netlist {
        let mut nl = Netlist::new();
        let w = self.width;
        let a: Vec<NodeId> = self.a.iter().map(|&v| nl.input(v)).collect();
        let b: Vec<NodeId> = self.b.iter().map(|&v| nl.input(v)).collect();
        // Accumulator starts as row 0, then adds shifted rows serially.
        let zero = nl.constant(false);
        let mut acc: Vec<NodeId> = vec![zero; 2 * w];
        for j in 0..w {
            // Row j: a·b_j << j
            let mut carry = zero;
            for i in 0..w {
                let pp = nl.and(a[i], b[j]);
                let (s, co) = nl.full_adder(acc[i + j], pp, carry);
                acc[i + j] = s;
                carry = co;
            }
            // Propagate the final carry into the next position.
            let (s, co) = nl.half_adder(acc[j + w], carry);
            acc[j + w] = s;
            if j + w + 1 < 2 * w {
                let (s2, _) = nl.half_adder(acc[j + w + 1], co);
                acc[j + w + 1] = s2;
            }
        }
        for (c, &bit) in acc.iter().enumerate() {
            nl.set_output(&format!("p{c}"), bit);
        }
        nl
    }

    /// Wallace/TGA-style multiplier: all partial products into a bit
    /// matrix, greedy compressor tree, final adder.
    pub fn wallace_netlist(&self) -> Netlist {
        let mut nl = Netlist::new();
        let w = self.width;
        let a: Vec<NodeId> = self.a.iter().map(|&v| nl.input(v)).collect();
        let b: Vec<NodeId> = self.b.iter().map(|&v| nl.input(v)).collect();
        let mut m = BitMatrix::new();
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                let pp = nl.and(ai, bj);
                m.push(i + j, pp);
            }
        }
        let sums = tga_reduce(&mut nl, m, 2 * w);
        for (c, &bit) in sums.iter().enumerate() {
            nl.set_output(&format!("p{c}"), bit);
        }
        nl
    }

    /// Reference model.
    pub fn reference(&self, a: u64, b: u64) -> u64 {
        a * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::{random_operands, run_ints};
    use pd_netlist::sim::check_equiv_anf;

    fn check(nl: &Netlist, m: &Multiplier, seed: u64) {
        let av = random_operands(seed, m.width, 64);
        let bv = random_operands(seed + 5, m.width, 64);
        let got = run_ints(
            nl,
            &[&m.a, &m.b],
            &[av.clone(), bv.clone()],
            "p",
            m.out_bits(),
        );
        for lane in 0..64 {
            assert_eq!(got[lane], av[lane] * bv[lane], "lane {lane}");
        }
    }

    #[test]
    fn array_multiplier_is_correct() {
        let m = Multiplier::new(6);
        check(&m.array_netlist(), &m, 61);
    }

    #[test]
    fn wallace_multiplier_is_correct() {
        let m = Multiplier::new(6);
        check(&m.wallace_netlist(), &m, 67);
    }

    #[test]
    fn spec_matches_netlists_exhaustively_at_4() {
        let m = Multiplier::new(4);
        let spec = m.spec();
        assert_eq!(check_equiv_anf(&m.array_netlist(), &spec, 64, 3), None);
        assert_eq!(check_equiv_anf(&m.wallace_netlist(), &spec, 64, 5), None);
    }

    #[test]
    fn wallace_is_shallower_than_array() {
        let m = Multiplier::new(8);
        let depth = |nl: &Netlist| {
            let lv = nl.levels();
            nl.outputs().iter().map(|&(_, n)| lv[n.index()]).max().unwrap()
        };
        assert!(depth(&m.wallace_netlist()) < depth(&m.array_netlist()));
    }

    #[test]
    fn spec_bit_counts_are_plausible() {
        // p0 = a0·b0 single term; top bit small; middle bits large.
        let m = Multiplier::new(4);
        let spec = m.spec();
        assert_eq!(spec[0].1.term_count(), 1);
        let mid = spec[4].1.term_count();
        assert!(mid > 4, "middle product bits are complex: {mid}");
    }
}
