//! Input-word plumbing and integer-level simulation helpers.
//!
//! Benchmark circuits operate on integer operands; these helpers allocate
//! word variables, drive netlists with integer stimulus and read
//! multi-bit outputs back as integers, so tests can check circuits
//! against plain `u64` arithmetic.

use pd_anf::{Var, VarPool};
use pd_netlist::{sim, Netlist};
use std::collections::HashMap;

/// Allocates `width` bits named `{name}{bit}` for word index `word`,
/// LSB first.
pub fn word(pool: &mut VarPool, name: &str, word: usize, width: usize) -> Vec<Var> {
    pool.input_word(name, word, width)
}

/// Builds a 64-lane stimulus assigning each listed word an integer per
/// lane: `values[w][lane]` is the integer driven onto word `w` in `lane`.
pub fn stimulus_from_ints(words: &[&[Var]], values: &[Vec<u64>]) -> HashMap<Var, u64> {
    assert_eq!(words.len(), values.len());
    let mut stim = HashMap::new();
    for (bits, vals) in words.iter().zip(values) {
        assert!(vals.len() <= 64);
        for (bit_idx, &v) in bits.iter().enumerate() {
            let mut packed = 0u64;
            for (lane, &value) in vals.iter().enumerate() {
                if value >> bit_idx & 1 == 1 {
                    packed |= 1 << lane;
                }
            }
            stim.insert(v, packed);
        }
    }
    stim
}

/// Reads outputs named `{prefix}0..{prefix}{n}` back as one integer per
/// lane.
pub fn outputs_as_ints(
    netlist: &Netlist,
    values: &[u64],
    prefix: &str,
    width: usize,
    lanes: usize,
) -> Vec<u64> {
    let mut out = vec![0u64; lanes];
    for bit in 0..width {
        let name = format!("{prefix}{bit}");
        let node = netlist
            .outputs()
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("missing output {name}"))
            .1;
        let word = values[node.index()];
        for (lane, slot) in out.iter_mut().enumerate() {
            if word >> lane & 1 == 1 {
                *slot |= 1 << bit;
            }
        }
    }
    out
}

/// Drives `netlist` with integer operands and returns the integer value
/// of outputs `{prefix}0..{prefix}{width}` for each lane.
pub fn run_ints(
    netlist: &Netlist,
    words: &[&[Var]],
    values: &[Vec<u64>],
    prefix: &str,
    width: usize,
) -> Vec<u64> {
    let lanes = values.first().map(Vec::len).unwrap_or(0);
    let stim = stimulus_from_ints(words, values);
    let node_values = sim::simulate64(netlist, &stim);
    outputs_as_ints(netlist, &node_values, prefix, width, lanes)
}

/// Deterministic pseudo-random integers below `2^width` (SplitMix64).
pub fn random_operands(seed: u64, width: usize, count: usize) -> Vec<u64> {
    let mut state = seed;
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    (0..count)
        .map(|_| {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            (z ^ (z >> 31)) & mask
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stimulus_packs_bits_per_lane() {
        let mut pool = VarPool::new();
        let a = word(&mut pool, "a", 0, 4);
        let stim = stimulus_from_ints(&[&a], &[vec![0b1010, 0b0001]]);
        assert_eq!(stim[&a[0]], 0b10); // bit0: lane1 only
        assert_eq!(stim[&a[1]], 0b01); // bit1: lane0 only
        assert_eq!(stim[&a[3]], 0b01);
    }

    #[test]
    fn round_trip_through_identity_netlist() {
        let mut pool = VarPool::new();
        let a = word(&mut pool, "a", 0, 4);
        let mut nl = Netlist::new();
        for (i, &v) in a.iter().enumerate() {
            let n = nl.input(v);
            nl.set_output(&format!("z{i}"), n);
        }
        let vals = vec![vec![5u64, 9, 15, 0]];
        let got = run_ints(&nl, &[&a], &vals, "z", 4);
        assert_eq!(got, vec![5, 9, 15, 0]);
    }

    #[test]
    fn random_operands_respect_width() {
        let ops = random_operands(42, 5, 100);
        assert!(ops.iter().all(|&x| x < 32));
        assert!(ops.iter().any(|&x| x > 0));
    }
}
