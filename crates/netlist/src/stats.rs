//! Structural statistics: the quantitative counterpart of the paper's
//! Fig. 1 vs Fig. 2 comparison.
//!
//! The motivation section argues that the flat LZD has a "huge number of
//! interconnections" and high fan-in/fan-out dependencies, while the
//! hierarchical design is "regular, structured, and low fan-in". These
//! metrics make that claim measurable: wire (edge) counts, logic depth,
//! fan-out distribution, and the fan-out load on primary inputs.

use crate::gate::Gate;
use crate::netlist::Netlist;
use std::collections::BTreeMap;
use std::fmt;

/// Structural metrics of a netlist (live logic only).
#[derive(Clone, Debug, PartialEq)]
pub struct NetlistStats {
    /// Total live nodes, including inputs and constants.
    pub nodes: usize,
    /// Live logic gates (excluding inputs and constants).
    pub gates: usize,
    /// Total fan-in edges of live gates — the "interconnection" count.
    pub edges: usize,
    /// Longest input-to-output path in gate levels.
    pub depth: u32,
    /// Largest fan-out of any node.
    pub max_fanout: u32,
    /// Mean fan-out over driving nodes.
    pub avg_fanout: f64,
    /// Largest fan-out among primary inputs (the paper's "high fan-out
    /// load on primary inputs").
    pub input_max_fanout: u32,
    /// Mean fan-out over primary inputs.
    pub input_avg_fanout: f64,
    /// Gate counts by mnemonic.
    pub gate_counts: BTreeMap<&'static str, usize>,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gates, {} wires, depth {}, max fanout {} (inputs: {}), avg fanout {:.2}",
            self.gates, self.edges, self.depth, self.max_fanout, self.input_max_fanout, self.avg_fanout
        )
    }
}

/// Computes [`NetlistStats`] over the live cone of the outputs.
pub fn stats(netlist: &Netlist) -> NetlistStats {
    let live = netlist.live_mask();
    let levels = netlist.levels();
    let mut fanout = vec![0u32; netlist.len()];
    let mut gates = 0usize;
    let mut edges = 0usize;
    let mut gate_counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    for (id, gate) in netlist.iter() {
        if !live[id.index()] {
            continue;
        }
        match gate {
            Gate::Const(_) | Gate::Input(_) => {}
            _ => {
                gates += 1;
                edges += gate.arity();
                *gate_counts.entry(gate.mnemonic()).or_default() += 1;
            }
        }
        for fi in gate.fanins() {
            fanout[fi.index()] += 1;
        }
    }
    let depth = netlist
        .outputs()
        .iter()
        .map(|&(_, n)| levels[n.index()])
        .max()
        .unwrap_or(0);
    let mut max_fanout = 0u32;
    let mut driving = 0usize;
    let mut total_fanout = 0u64;
    let mut input_max = 0u32;
    let mut input_total = 0u64;
    let mut input_count = 0usize;
    for (id, gate) in netlist.iter() {
        if !live[id.index()] {
            continue;
        }
        let fo = fanout[id.index()];
        if fo > 0 {
            driving += 1;
            total_fanout += u64::from(fo);
            max_fanout = max_fanout.max(fo);
        }
        if matches!(gate, Gate::Input(_)) {
            input_count += 1;
            input_total += u64::from(fo);
            input_max = input_max.max(fo);
        }
    }
    NetlistStats {
        nodes: live.iter().filter(|&&l| l).count(),
        gates,
        edges,
        depth,
        max_fanout,
        avg_fanout: if driving == 0 {
            0.0
        } else {
            total_fanout as f64 / driving as f64
        },
        input_max_fanout: input_max,
        input_avg_fanout: if input_count == 0 {
            0.0
        } else {
            input_total as f64 / input_count as f64
        },
        gate_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_anf::VarPool;

    #[test]
    fn counts_simple_netlist() {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let mut nl = Netlist::new();
        let (na, nb) = (nl.input(a), nl.input(b));
        let x = nl.xor(na, nb);
        let y = nl.and(x, na);
        nl.set_output("y", y);
        let s = stats(&nl);
        assert_eq!(s.gates, 2);
        assert_eq!(s.edges, 4);
        assert_eq!(s.depth, 2);
        assert_eq!(s.input_max_fanout, 2); // `a` feeds xor and and
        assert_eq!(s.gate_counts.get("xor"), Some(&1));
        assert_eq!(s.gate_counts.get("and"), Some(&1));
    }

    #[test]
    fn dead_logic_is_ignored() {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let mut nl = Netlist::new();
        let (na, nb) = (nl.input(a), nl.input(b));
        let live = nl.xor(na, nb);
        let _dead = nl.and(na, nb);
        nl.set_output("y", live);
        let s = stats(&nl);
        assert_eq!(s.gates, 1);
    }

    #[test]
    fn fanout_of_shared_node() {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let c = pool.input("c", 0, 2);
        let mut nl = Netlist::new();
        let (na, nb, nc) = (nl.input(a), nl.input(b), nl.input(c));
        let shared = nl.xor(na, nb);
        let u = nl.and(shared, nc);
        let v = nl.or(shared, nc);
        nl.set_output("u", u);
        nl.set_output("v", v);
        let s = stats(&nl);
        assert_eq!(s.max_fanout, 2);
        assert_eq!(s.gates, 3);
    }
}
