//! Structural Verilog import.
//!
//! Parses the gate-level subset that [`crate::export::to_verilog`] emits
//! (and that hand-written structural netlists commonly use): `module`
//! headers, `input`/`output`/`wire` declarations, continuous assignments
//! with `~ & ^ |` and the ternary mux, and `endmodule`. Together with
//! the exporter this gives the toolchain a netlist round-trip: circuits
//! can leave for other tools and come back for re-architecting.

use crate::gate::NodeId;
use crate::netlist::Netlist;
use pd_anf::VarPool;
use std::collections::HashMap;
use std::fmt;

/// Error produced by [`from_verilog`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseVerilogError {
    /// 1-based line of the offending construct.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseVerilogError {}

fn err(line: usize, message: impl Into<String>) -> ParseVerilogError {
    ParseVerilogError {
        line,
        message: message.into(),
    }
}

/// Parses a single structural Verilog module into a [`Netlist`].
///
/// Inputs are registered in `pool` (reusing variables that already carry
/// the same name); `output` ports become the netlist's named outputs.
/// Signals must be defined before use, which is always the case for the
/// topologically-ordered output of [`crate::export::to_verilog`].
///
/// # Errors
///
/// Returns [`ParseVerilogError`] on syntax errors, use of undefined
/// signals, redefinitions, or unsupported constructs (only the
/// combinational operator subset `~ & ^ | ?:` is accepted).
pub fn from_verilog(text: &str, pool: &mut VarPool) -> Result<Netlist, ParseVerilogError> {
    let mut nl = Netlist::new();
    let mut signals: HashMap<String, NodeId> = HashMap::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut seen_module = false;
    let mut seen_end = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stmt = raw.split("//").next().unwrap_or("").trim();
        if stmt.is_empty() {
            continue;
        }
        if seen_end {
            return Err(err(line, "content after endmodule"));
        }
        if let Some(rest) = stmt.strip_prefix("module") {
            if seen_module {
                return Err(err(line, "only a single module is supported"));
            }
            seen_module = true;
            // The port list carries no direction info here; directions
            // come from the input/output declarations.
            if !rest.trim_end().ends_with(';') {
                return Err(err(line, "module header must end with ';'"));
            }
            continue;
        }
        if !seen_module {
            return Err(err(line, "expected `module` before declarations"));
        }
        if stmt == "endmodule" {
            seen_end = true;
            continue;
        }
        let stmt = stmt
            .strip_suffix(';')
            .ok_or_else(|| err(line, "statement must end with ';'"))?
            .trim();
        if let Some(rest) = stmt.strip_prefix("input") {
            for name in rest.split(',') {
                let name = name.trim();
                check_identifier(name, line)?;
                let v = pool.var_or_input(name);
                let node = nl.input(v);
                if signals.insert(name.to_owned(), node).is_some() {
                    return Err(err(line, format!("signal {name:?} redefined")));
                }
            }
        } else if let Some(rest) = stmt.strip_prefix("output") {
            for name in rest.split(',') {
                let name = name.trim();
                check_identifier(name, line)?;
                outputs.push(name.to_owned());
            }
        } else if let Some(rest) = stmt.strip_prefix("wire") {
            let (name, expr) = rest
                .split_once('=')
                .ok_or_else(|| err(line, "wire declaration needs `= expr`"))?;
            let name = name.trim();
            check_identifier(name, line)?;
            let node = parse_expr(expr, line, &signals, &mut nl)?;
            if signals.insert(name.to_owned(), node).is_some() {
                return Err(err(line, format!("signal {name:?} redefined")));
            }
        } else if let Some(rest) = stmt.strip_prefix("assign") {
            let (name, expr) = rest
                .split_once('=')
                .ok_or_else(|| err(line, "assign needs `= expr`"))?;
            let name = name.trim();
            check_identifier(name, line)?;
            if !outputs.iter().any(|o| o == name) {
                return Err(err(line, format!("assign target {name:?} is not an output")));
            }
            let node = parse_expr(expr, line, &signals, &mut nl)?;
            nl.set_output(name, node);
        } else {
            return Err(err(line, format!("unsupported statement {stmt:?}")));
        }
    }
    if !seen_end {
        return Err(err(text.lines().count(), "missing endmodule"));
    }
    for o in &outputs {
        if !nl.outputs().iter().any(|(n, _)| n == o) {
            return Err(err(
                text.lines().count(),
                format!("output {o:?} was never assigned"),
            ));
        }
    }
    Ok(nl)
}

fn check_identifier(name: &str, line: usize) -> Result<(), ParseVerilogError> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$')
        && !name.chars().next().is_some_and(|c| c.is_ascii_digit());
    if ok {
        Ok(())
    } else {
        Err(err(line, format!("bad identifier {name:?}")))
    }
}

/// Recursive-descent expression parser over the combinational subset.
/// Precedence (loosest to tightest): `?:`, `|`, `^`, `&`, unary `~`.
struct ExprParser<'a> {
    tokens: Vec<Token<'a>>,
    pos: usize,
    line: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Token<'a> {
    Ident(&'a str),
    Const(bool),
    Op(char),
}

fn tokenize(s: &str, line: usize) -> Result<Vec<Token<'_>>, ParseVerilogError> {
    let mut tokens = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '~' | '&' | '^' | '|' | '?' | ':' | '(' | ')' => {
                tokens.push(Token::Op(c));
                i += 1;
            }
            '1' if s[i..].starts_with("1'b0") => {
                tokens.push(Token::Const(false));
                i += 4;
            }
            '1' if s[i..].starts_with("1'b1") => {
                tokens.push(Token::Const(true));
                i += 4;
            }
            c if c.is_ascii_alphanumeric() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(&s[start..i]));
            }
            other => return Err(err(line, format!("unexpected character {other:?}"))),
        }
    }
    Ok(tokens)
}

fn parse_expr(
    s: &str,
    line: usize,
    signals: &HashMap<String, NodeId>,
    nl: &mut Netlist,
) -> Result<NodeId, ParseVerilogError> {
    let mut p = ExprParser {
        tokens: tokenize(s, line)?,
        pos: 0,
        line,
    };
    let node = p.ternary(signals, nl)?;
    if p.pos != p.tokens.len() {
        return Err(err(line, "trailing tokens in expression"));
    }
    Ok(node)
}

impl<'a> ExprParser<'a> {
    fn peek(&self) -> Option<Token<'a>> {
        self.tokens.get(self.pos).copied()
    }

    fn eat_op(&mut self, op: char) -> bool {
        if self.peek() == Some(Token::Op(op)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ternary(
        &mut self,
        signals: &HashMap<String, NodeId>,
        nl: &mut Netlist,
    ) -> Result<NodeId, ParseVerilogError> {
        let cond = self.or_expr(signals, nl)?;
        if !self.eat_op('?') {
            return Ok(cond);
        }
        let hi = self.ternary(signals, nl)?;
        if !self.eat_op(':') {
            return Err(err(self.line, "ternary missing ':'"));
        }
        let lo = self.ternary(signals, nl)?;
        Ok(nl.mux(cond, lo, hi))
    }

    fn or_expr(
        &mut self,
        signals: &HashMap<String, NodeId>,
        nl: &mut Netlist,
    ) -> Result<NodeId, ParseVerilogError> {
        let mut acc = self.xor_expr(signals, nl)?;
        while self.eat_op('|') {
            let rhs = self.xor_expr(signals, nl)?;
            acc = nl.or(acc, rhs);
        }
        Ok(acc)
    }

    fn xor_expr(
        &mut self,
        signals: &HashMap<String, NodeId>,
        nl: &mut Netlist,
    ) -> Result<NodeId, ParseVerilogError> {
        let mut acc = self.and_expr(signals, nl)?;
        while self.eat_op('^') {
            let rhs = self.and_expr(signals, nl)?;
            acc = nl.xor(acc, rhs);
        }
        Ok(acc)
    }

    fn and_expr(
        &mut self,
        signals: &HashMap<String, NodeId>,
        nl: &mut Netlist,
    ) -> Result<NodeId, ParseVerilogError> {
        let mut acc = self.unary(signals, nl)?;
        while self.eat_op('&') {
            let rhs = self.unary(signals, nl)?;
            acc = nl.and(acc, rhs);
        }
        Ok(acc)
    }

    fn unary(
        &mut self,
        signals: &HashMap<String, NodeId>,
        nl: &mut Netlist,
    ) -> Result<NodeId, ParseVerilogError> {
        if self.eat_op('~') {
            let inner = self.unary(signals, nl)?;
            return Ok(nl.not(inner));
        }
        match self.peek() {
            Some(Token::Op('(')) => {
                self.pos += 1;
                let inner = self.ternary(signals, nl)?;
                if !self.eat_op(')') {
                    return Err(err(self.line, "missing ')'"));
                }
                Ok(inner)
            }
            Some(Token::Const(b)) => {
                self.pos += 1;
                Ok(nl.constant(b))
            }
            Some(Token::Ident(name)) => {
                self.pos += 1;
                signals
                    .get(name)
                    .copied()
                    .ok_or_else(|| err(self.line, format!("undefined signal {name:?}")))
            }
            other => Err(err(self.line, format!("expected operand, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::to_verilog;
    use crate::sim::check_equiv_anf;
    use pd_anf::Anf;

    fn roundtrip(nl: &Netlist, pool: &VarPool) -> Netlist {
        let text = to_verilog(nl, pool, "m");
        let mut pool2 = pool.clone();
        from_verilog(&text, &mut pool2).expect("emitted Verilog must parse")
    }

    #[test]
    fn parses_full_adder() {
        let src = "\
module fa(a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire p = a ^ b;           // propagate
  wire s = p ^ cin;
  wire g = a & b;
  wire c = (p & cin) | g;
  assign sum = s;
  assign cout = c;
endmodule
";
        let mut pool = VarPool::new();
        let nl = from_verilog(src, &mut pool).expect("parses");
        let sum = Anf::parse("a ^ b ^ cin", &mut pool).unwrap();
        let cout = Anf::parse("a*b ^ b*cin ^ cin*a", &mut pool).unwrap();
        let spec = vec![("sum".to_owned(), sum), ("cout".to_owned(), cout)];
        assert_eq!(check_equiv_anf(&nl, &spec, 8, 1), None);
    }

    #[test]
    fn precedence_is_ternary_or_xor_and_not() {
        let src = "\
module p(a, b, c, y, z);
  input a, b, c;
  output y, z;
  assign y = a | b ^ c & a;
  assign z = a ? b : c ^ a;
endmodule
";
        let mut pool = VarPool::new();
        let nl = from_verilog(src, &mut pool).expect("parses");
        // y = a | (b ^ (c & a)); z = a ? b : (c ^ a).
        let y = Anf::parse("(a ^ b ^ c*a ^ a*(b ^ c*a)) ^ a*(b ^ c*a)", &mut pool);
        // Simpler: check pointwise against a hand model.
        drop(y);
        for bits in 0..8u32 {
            let (a, b, c) = (bits & 1 == 1, bits >> 1 & 1 == 1, bits >> 2 & 1 == 1);
            let assignment: std::collections::HashMap<_, _> = [
                (pool.find("a").unwrap(), a),
                (pool.find("b").unwrap(), b),
                (pool.find("c").unwrap(), c),
            ]
            .into_iter()
            .collect();
            let got = crate::sim::evaluate(&nl, &assignment);
            assert_eq!(got["y"], a | (b ^ (c & a)), "y at {bits:03b}");
            assert_eq!(got["z"], if a { b } else { c ^ a }, "z at {bits:03b}");
        }
    }

    #[test]
    fn round_trips_exported_netlists() {
        let mut pool = VarPool::new();
        let a = pool.input_word("a", 0, 4);
        let b = pool.input_word("b", 1, 4);
        let mut nl = Netlist::new();
        let mut carry = nl.constant(false);
        for i in 0..4 {
            let (na, nb) = (nl.input(a[i]), nl.input(b[i]));
            let (s, c) = nl.full_adder(na, nb, carry);
            nl.set_output(&format!("s{i}"), s);
            carry = c;
        }
        nl.set_output("s4", carry);
        let back = roundtrip(&nl, &pool);
        // Compare against the original by simulation over the spec names.
        for bits in 0..256u32 {
            let assignment: std::collections::HashMap<_, _> = a
                .iter()
                .chain(b.iter())
                .enumerate()
                .map(|(i, &v)| (v, bits >> i & 1 == 1))
                .collect();
            let want = crate::sim::evaluate(&nl, &assignment);
            let got = crate::sim::evaluate(&back, &assignment);
            assert_eq!(want, got, "bits {bits:08b}");
        }
    }

    #[test]
    fn constants_and_mux_round_trip() {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let c = pool.input("c", 0, 2);
        let mut nl = Netlist::new();
        let (na, nb, nc) = (nl.input(a), nl.input(b), nl.input(c));
        let m = nl.mux(na, nb, nc);
        let mj = nl.maj(na, nb, nc);
        let one = nl.constant(true);
        let t = nl.xor(m, one);
        nl.set_output("m", t);
        nl.set_output("mj", mj);
        let back = roundtrip(&nl, &pool);
        for bits in 0..8u32 {
            let assignment: std::collections::HashMap<_, _> =
                [(a, bits & 1 == 1), (b, bits >> 1 & 1 == 1), (c, bits >> 2 & 1 == 1)]
                    .into_iter()
                    .collect();
            assert_eq!(
                crate::sim::evaluate(&nl, &assignment),
                crate::sim::evaluate(&back, &assignment),
                "bits {bits:03b}"
            );
        }
    }

    #[test]
    fn error_reporting_is_precise() {
        let pool = VarPool::new();
        let cases = [
            ("wire x = a;\nendmodule\n", 1, "module"),
            ("module m(a);\n  input a;\n  wire w = undefined_sig;\nendmodule\n", 3, "undefined"),
            ("module m(a);\n  input a;\n  input a;\nendmodule\n", 3, "redefined"),
            ("module m(a, y);\n  input a;\n  output y;\n  assign y = a &;\nendmodule\n", 4, "operand"),
            ("module m(a, y);\n  input a;\n  output y;\n  assign z = a;\nendmodule\n", 4, "not an output"),
            ("module m(a, y);\n  input a;\n  output y;\n  assign y = a\nendmodule\n", 4, "';'"),
            ("module m(a, y);\n  input a;\n  output y;\nendmodule\n", 4, "never assigned"),
        ];
        for (src, line, needle) in cases {
            let e = from_verilog(src, &mut pool.clone()).expect_err(src);
            assert_eq!(e.line, line, "{src}");
            assert!(
                e.message.contains(needle),
                "expected {needle:?} in {:?} for {src}",
                e.message
            );
        }
    }

    #[test]
    fn missing_endmodule_is_rejected() {
        let mut pool = VarPool::new();
        let e = from_verilog("module m(a);\n  input a;\n", &mut pool).expect_err("no end");
        assert!(e.message.contains("endmodule"));
    }
}
