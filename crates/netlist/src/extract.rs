//! Exact ANF extraction from a netlist.
//!
//! Converts every output of a gate network back into canonical Reed–Muller
//! form, enabling *exact* equivalence checks between independently built
//! circuits whenever the intermediate polynomials stay manageable. Above
//! the supplied cap the extraction aborts (callers then fall back on
//! simulation-based checking, as the paper notes Reed–Muller forms can be
//! exponentially large).

use crate::gate::Gate;
use crate::netlist::Netlist;
use pd_anf::Anf;

/// Extracts the ANF of every named output.
///
/// Returns `None` if any node's polynomial exceeds `term_cap` XOR terms.
pub fn extract_anf(netlist: &Netlist, term_cap: usize) -> Option<Vec<(String, Anf)>> {
    let mut exprs: Vec<Anf> = Vec::with_capacity(netlist.len());
    let live = netlist.live_mask();
    for (id, gate) in netlist.iter() {
        if !live[id.index()] {
            // Dead logic is skipped (placeholder keeps indexing aligned).
            exprs.push(Anf::zero());
            continue;
        }
        let e = match gate {
            Gate::Const(false) => Anf::zero(),
            Gate::Const(true) => Anf::one(),
            Gate::Input(v) => Anf::var(v),
            Gate::Not(a) => exprs[a.index()].not(),
            Gate::And(a, b) => exprs[a.index()].and(&exprs[b.index()]),
            Gate::Or(a, b) => exprs[a.index()].or(&exprs[b.index()]),
            Gate::Xor(a, b) => exprs[a.index()].xor(&exprs[b.index()]),
            Gate::Mux { sel, lo, hi } => {
                let s = &exprs[sel.index()];
                // lo ⊕ s·lo ⊕ s·hi
                let lo_e = &exprs[lo.index()];
                let hi_e = &exprs[hi.index()];
                lo_e.xor(&s.and(lo_e)).xor(&s.and(hi_e))
            }
            Gate::Maj(a, b, c) => {
                let (x, y, z) = (&exprs[a.index()], &exprs[b.index()], &exprs[c.index()]);
                x.and(y).xor(&y.and(z)).xor(&z.and(x))
            }
        };
        if e.term_count() > term_cap {
            return None;
        }
        exprs.push(e);
    }
    Some(
        netlist
            .outputs()
            .iter()
            .map(|(name, n)| (name.clone(), exprs[n.index()].clone()))
            .collect(),
    )
}

/// Checks two netlists for exact functional equivalence via ANF extraction.
///
/// Outputs are matched by name. Returns `None` if either extraction
/// exceeds `term_cap` (undecided), `Some(true)` when every common output
/// matches and the output name sets agree, `Some(false)` otherwise.
pub fn equiv_by_extraction(a: &Netlist, b: &Netlist, term_cap: usize) -> Option<bool> {
    let ea = extract_anf(a, term_cap)?;
    let eb = extract_anf(b, term_cap)?;
    if ea.len() != eb.len() {
        return Some(false);
    }
    for (name, expr) in &ea {
        match eb.iter().find(|(n, _)| n == name) {
            Some((_, other)) if other == expr => {}
            _ => return Some(false),
        }
    }
    Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_anf::{Anf, VarPool};

    #[test]
    fn extraction_round_trips_synthesis() {
        let mut pool = VarPool::new();
        let spec = Anf::parse("a*b ^ c ^ a*c*d ^ 1", &mut pool).unwrap();
        let outputs = vec![("y".to_owned(), spec.clone())];
        let nl = crate::synth::synthesize_outputs(&outputs);
        let got = extract_anf(&nl, 1 << 12).unwrap();
        assert_eq!(got, outputs);
    }

    #[test]
    fn different_structures_same_function() {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        // Netlist 1: a XOR b. Netlist 2: (a OR b) AND NOT(a AND b).
        let mut n1 = Netlist::new();
        let (x, y) = (n1.input(a), n1.input(b));
        let r1 = n1.xor(x, y);
        n1.set_output("y", r1);
        let mut n2 = Netlist::new();
        let (x, y) = (n2.input(a), n2.input(b));
        let o = n2.or(x, y);
        let an = n2.and(x, y);
        let nan = n2.not(an);
        let r2 = n2.and(o, nan);
        n2.set_output("y", r2);
        assert_eq!(equiv_by_extraction(&n1, &n2, 1 << 10), Some(true));
    }

    #[test]
    fn detects_inequivalence() {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let mut n1 = Netlist::new();
        let (x, y) = (n1.input(a), n1.input(b));
        let r1 = n1.xor(x, y);
        n1.set_output("y", r1);
        let mut n2 = Netlist::new();
        let (x, y) = (n2.input(a), n2.input(b));
        let r2 = n2.and(x, y);
        n2.set_output("y", r2);
        assert_eq!(equiv_by_extraction(&n1, &n2, 1 << 10), Some(false));
    }

    #[test]
    fn cap_aborts() {
        // A wide XOR-of-ANDs has a big polynomial at the OR node.
        let mut pool = VarPool::new();
        let vars: Vec<_> = (0..10).map(|i| pool.input(&format!("x{i}"), 0, i)).collect();
        let mut nl = Netlist::new();
        let nodes: Vec<_> = vars.iter().map(|&v| nl.input(v)).collect();
        let r = nl.or_many(&nodes);
        nl.set_output("y", r);
        assert!(extract_anf(&nl, 8).is_none());
        assert!(extract_anf(&nl, 1 << 12).is_some());
    }

    #[test]
    fn mux_and_maj_extract_correctly() {
        let mut pool = VarPool::new();
        let s = pool.input("s", 0, 0);
        let a = pool.input("a", 0, 1);
        let b = pool.input("b", 0, 2);
        let mut nl = Netlist::new();
        let (ns, na, nb) = (nl.input(s), nl.input(a), nl.input(b));
        let m = nl.mux(ns, na, nb);
        let j = nl.maj(ns, na, nb);
        nl.set_output("mux", m);
        nl.set_output("maj", j);
        let got = extract_anf(&nl, 64).unwrap();
        let mux_spec = Anf::parse("a ^ s*a ^ s*b", &mut pool).unwrap();
        let maj_spec = Anf::parse("s*a ^ a*b ^ b*s", &mut pool).unwrap();
        assert_eq!(got[0], ("mux".to_owned(), mux_spec));
        assert_eq!(got[1], ("maj".to_owned(), maj_spec));
    }
}
