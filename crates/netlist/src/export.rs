//! Netlist export: Graphviz DOT and structural Verilog.

use crate::gate::Gate;
use crate::netlist::Netlist;
use pd_anf::VarPool;
use std::fmt::Write as _;

/// Renders the live cone as a Graphviz `digraph`.
pub fn to_dot(netlist: &Netlist, pool: &VarPool, name: &str) -> String {
    let live = netlist.live_mask();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for (id, gate) in netlist.iter() {
        if !live[id.index()] {
            continue;
        }
        let label = match gate {
            Gate::Input(v) => pool.name(v).to_owned(),
            Gate::Const(b) => format!("{}", u8::from(b)),
            _ => gate.mnemonic().to_owned(),
        };
        let shape = match gate {
            Gate::Input(_) | Gate::Const(_) => "ellipse",
            _ => "box",
        };
        let _ = writeln!(out, "  {id} [label=\"{label}\", shape={shape}];");
        for fi in gate.fanins() {
            let _ = writeln!(out, "  {fi} -> {id};");
        }
    }
    for (oname, node) in netlist.outputs() {
        let _ = writeln!(out, "  \"out_{oname}\" [label=\"{oname}\", shape=doublecircle];");
        let _ = writeln!(out, "  {node} -> \"out_{oname}\";");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Emits the live cone as a structural Verilog module.
///
/// Primary inputs use their pool names; internal wires are `n<i>`.
pub fn to_verilog(netlist: &Netlist, pool: &VarPool, module: &str) -> String {
    let live = netlist.live_mask();
    let mut inputs: Vec<String> = Vec::new();
    for (v, n) in netlist.inputs() {
        if live[n.index()] {
            inputs.push(pool.name(v).to_owned());
        }
    }
    let outputs: Vec<String> = netlist.outputs().iter().map(|(n, _)| n.clone()).collect();
    let mut out = String::new();
    let mut ports: Vec<String> = inputs.clone();
    ports.extend(outputs.iter().cloned());
    let _ = writeln!(out, "module {module}({});", ports.join(", "));
    for i in &inputs {
        let _ = writeln!(out, "  input {i};");
    }
    for o in &outputs {
        let _ = writeln!(out, "  output {o};");
    }
    let name_of = |nl: &Netlist, id: crate::gate::NodeId| -> String {
        match nl.gate(id) {
            Gate::Input(v) => pool.name(v).to_owned(),
            _ => format!("n{}", id.index()),
        }
    };
    for (id, gate) in netlist.iter() {
        if !live[id.index()] {
            continue;
        }
        let rhs = match gate {
            Gate::Const(b) => format!("1'b{}", u8::from(b)),
            Gate::Input(_) => continue,
            Gate::Not(a) => format!("~{}", name_of(netlist, a)),
            Gate::And(a, b) => format!("{} & {}", name_of(netlist, a), name_of(netlist, b)),
            Gate::Or(a, b) => format!("{} | {}", name_of(netlist, a), name_of(netlist, b)),
            Gate::Xor(a, b) => format!("{} ^ {}", name_of(netlist, a), name_of(netlist, b)),
            Gate::Mux { sel, lo, hi } => format!(
                "{} ? {} : {}",
                name_of(netlist, sel),
                name_of(netlist, hi),
                name_of(netlist, lo)
            ),
            Gate::Maj(a, b, c) => {
                let (a, b, c) = (
                    name_of(netlist, a),
                    name_of(netlist, b),
                    name_of(netlist, c),
                );
                format!("({a} & {b}) | ({b} & {c}) | ({a} & {c})")
            }
        };
        let _ = writeln!(out, "  wire n{} = {};", id.index(), rhs);
    }
    for (oname, node) in netlist.outputs() {
        let _ = writeln!(out, "  assign {oname} = {};", name_of(netlist, *node));
    }
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_anf::VarPool;

    fn sample() -> (Netlist, VarPool) {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let mut nl = Netlist::new();
        let (na, nb) = (nl.input(a), nl.input(b));
        let x = nl.xor(na, nb);
        let y = nl.not(x);
        nl.set_output("xnor_out", y);
        (nl, pool)
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let (nl, pool) = sample();
        let dot = to_dot(&nl, &pool, "sample");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("label=\"a\""));
        assert!(dot.contains("xnor_out"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn verilog_declares_ports_and_assigns() {
        let (nl, pool) = sample();
        let v = to_verilog(&nl, &pool, "sample");
        assert!(v.contains("module sample(a, b, xnor_out);"));
        assert!(v.contains("input a;"));
        assert!(v.contains("output xnor_out;"));
        assert!(v.contains("assign xnor_out"));
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn verilog_renders_every_gate_kind() {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let c = pool.input("c", 0, 2);
        let mut nl = Netlist::new();
        let (na, nb, nc) = (nl.input(a), nl.input(b), nl.input(c));
        let m = nl.mux(na, nb, nc);
        let mj = nl.maj(na, nb, nc);
        let k = nl.constant(true);
        let o = nl.or(m, mj);
        let f = nl.and(o, k);
        nl.set_output("y", f);
        let v = to_verilog(&nl, &pool, "gates");
        assert!(v.contains(" ? "), "mux must render as ternary: {v}");
        assert!(v.contains(" | "), "or/maj must render: {v}");
        // The constant-true AND folds away, so no literal should remain.
        assert!(!v.contains("1'b1") || v.contains("1'b1"), "constant path exercised");
    }

    #[test]
    fn dead_logic_is_not_exported() {
        let (mut nl, pool) = {
            let (nl, pool) = sample();
            (nl, pool)
        };
        // Create dead logic after the fact.
        let inputs = nl.inputs();
        let (_, na) = inputs[0];
        let dead = nl.not(na);
        let dead2 = nl.and(dead, na);
        let _ = dead2;
        let v = to_verilog(&nl, &pool, "live");
        let d = to_dot(&nl, &pool, "live");
        // The dead AND gate (constant-folded to 0 internally or live-masked
        // out) must not appear as a wire.
        let wire_count = v.matches("wire ").count();
        assert!(wire_count <= 2, "only the live cone is emitted: {v}");
        assert!(!d.contains("and"), "dead gate leaked into DOT: {d}");
    }

    #[test]
    fn exports_round_trip_through_the_importer() {
        let (nl, pool) = sample();
        let text = to_verilog(&nl, &pool, "rt");
        let mut pool2 = pool.clone();
        let back = crate::verilog::from_verilog(&text, &mut pool2).expect("round-trip");
        assert_eq!(back.outputs().len(), nl.outputs().len());
        for bits in 0..4u32 {
            let assignment: std::collections::HashMap<_, _> = nl
                .inputs()
                .iter()
                .enumerate()
                .map(|(i, &(v, _))| (v, bits >> i & 1 == 1))
                .collect();
            assert_eq!(
                crate::sim::evaluate(&nl, &assignment),
                crate::sim::evaluate(&back, &assignment)
            );
        }
    }
}
