//! Multi-level synthesis of ANF expressions into gates.
//!
//! Progressive Decomposition produces *small* leader expressions (over at
//! most `k` variables per block); turning each into gates well is what the
//! paper delegates to Design Compiler's local optimisation. This module
//! plays that role: a cost-driven recursive decomposition choosing, per
//! subexpression, between
//!
//! * **algebraic factoring** `X = v·Q ⊕ R` on the most frequent variable,
//! * **Shannon expansion** `X = v ? X|v=1 : X|v=0` (a mux), and
//! * direct forms (XOR chains for linear parts, AND trees for monomials,
//!   majority detection, complement peeling of the constant term),
//!
//! with memoisation so structure shared between outputs is built once.

use crate::gate::NodeId;
use crate::netlist::Netlist;
use pd_anf::{Anf, Var};
use std::collections::HashMap;

/// Expressions larger than this skip Shannon-expansion cost probing (the
/// factoring path alone is used), bounding synthesis time on the huge flat
/// baseline expressions.
const SHANNON_TERM_LIMIT: usize = 48;

/// Expressions with larger supports only probe the most frequent variable
/// instead of every support variable.
const FULL_SEARCH_SUPPORT_LIMIT: usize = 12;

/// Relative cost of a mux cell versus a two-input gate.
const MUX_COST: f64 = 1.3;

/// Subexpression-planning budget per top-level [`Synthesizer::emit`]
/// call. The cost search recurses over cofactors and quotients; on the
/// small leader cones the decomposer produces it plans a few hundred
/// subexpressions, but a wide flat cone (a dozen-plus variables, dozens
/// of terms) can spawn an exponential frontier of restricted
/// subexpressions. Past the budget the planner degrades to greedy
/// most-frequent-variable factoring for the rest of that cone; the
/// counter resets per emitted cone, so one pathological cone cannot
/// degrade the cones synthesised after it.
const PLAN_BUDGET: usize = 4_000;

/// How a non-trivial expression is decomposed into gates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Decision {
    /// `1 ⊕ rest`: synthesise `rest`, invert.
    PeelOne,
    /// Single monomial: AND tree.
    Monomial,
    /// All terms degree ≤ 1: XOR tree.
    Linear,
    /// `ab ⊕ bc ⊕ ca`: single MAJ gate.
    Majority,
    /// The OR of all support literals: balanced OR tree.
    OrOfLiterals,
    /// `v·Q ⊕ R` algebraic factoring.
    Factor(Var),
    /// `v ? f₁ : f₀` Shannon expansion (mux).
    Shannon(Var),
}

/// Synthesises expressions into a [`Netlist`] with cross-call sharing.
///
/// # Examples
///
/// ```
/// use pd_anf::{Anf, VarPool};
/// use pd_netlist::{Netlist, Synthesizer};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut pool = VarPool::new();
/// let maj = Anf::parse("a*b ^ b*c ^ c*a", &mut pool)?;
/// let mut nl = Netlist::new();
/// let mut synth = Synthesizer::new();
/// let node = synth.emit(&mut nl, &maj);
/// nl.set_output("maj", node);
/// assert!(nl.len() <= 5, "majority should map to a single MAJ gate");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Synthesizer {
    /// Expression → node cache (shared subcircuits are built once).
    memo: HashMap<Anf, NodeId>,
    /// Variable → node bindings; defaults to primary inputs.
    env: HashMap<Var, NodeId>,
    /// Chosen decomposition, its estimated cost, and whether it was
    /// computed in degraded (over-budget) mode, per expression.
    plan_memo: HashMap<Anf, (Decision, f64, bool)>,
    /// Subexpressions planned so far (see [`PLAN_BUDGET`]).
    planned: usize,
}

impl Synthesizer {
    /// Creates a synthesizer with no bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds variable `v` to an existing node instead of a primary input.
    ///
    /// Progressive Decomposition uses this to wire a block's group
    /// variables to the leader outputs of earlier blocks.
    pub fn bind(&mut self, v: Var, node: NodeId) {
        self.env.insert(v, node);
    }

    fn node_for_var(&mut self, nl: &mut Netlist, v: Var) -> NodeId {
        if let Some(&n) = self.env.get(&v) {
            n
        } else {
            let n = nl.input(v);
            self.env.insert(v, n);
            n
        }
    }

    /// Estimated implementation cost (≈ gate count) of `expr`.
    fn cost(&mut self, expr: &Anf) -> f64 {
        if expr.is_constant() || expr.as_literal().is_some() {
            return 0.0;
        }
        self.plan(expr).1
    }

    /// Chooses (and caches) the cheapest decomposition for a non-trivial
    /// expression. A plan memoised while over budget is greedy, not
    /// cheapest — it is reused only while still over budget and recomputed
    /// once a later cone's fresh budget allows the full search, so a
    /// pathological cone cannot poison the cones synthesised after it.
    fn plan(&mut self, expr: &Anf) -> (Decision, f64) {
        let over_budget = self.planned >= PLAN_BUDGET;
        if let Some(&(d, c, degraded)) = self.plan_memo.get(expr) {
            if !degraded || over_budget {
                return (d, c);
            }
        }
        let p = self.plan_uncached(expr);
        self.plan_memo.insert(expr.clone(), (p.0, p.1, over_budget));
        p
    }

    fn plan_uncached(&mut self, expr: &Anf) -> (Decision, f64) {
        self.planned += 1;
        // Complement peel: 1 ⊕ rest is an inverter around rest.
        if expr.terms().any(|t| t.is_one()) {
            let c = 0.25 + self.cost(&expr.xor(&Anf::one()));
            return (Decision::PeelOne, c);
        }
        if expr.term_count() == 1 {
            return (Decision::Monomial, (expr.degree() - 1) as f64);
        }
        if expr.degree() <= 1 {
            return (Decision::Linear, (expr.term_count() - 1) as f64);
        }
        if is_majority(expr) {
            return (Decision::Majority, 1.0);
        }
        if is_or_of_literals(expr) {
            let n = expr.support().len();
            return (Decision::OrOfLiterals, (n - 1) as f64);
        }
        let support: Vec<Var> = expr.support().iter().collect();
        let over_budget = self.planned >= PLAN_BUDGET;
        let candidates: Vec<Var> = if support.len() <= FULL_SEARCH_SUPPORT_LIMIT && !over_budget
        {
            support
        } else {
            vec![most_frequent_var(expr).expect("nonlinear expression has variables")]
        };
        let try_shannon = !over_budget
            && expr.term_count() <= SHANNON_TERM_LIMIT
            && candidates.len() <= FULL_SEARCH_SUPPORT_LIMIT;
        let mut best = (Decision::Factor(candidates[0]), f64::INFINITY);
        for &v in &candidates {
            let (q, r) = factor_out(expr, v);
            if q.is_zero() {
                continue; // v does not actually occur
            }
            let gate_cost =
                f64::from(u8::from(!q.is_one())) + f64::from(u8::from(!r.is_zero()));
            let c = gate_cost + self.cost(&q) + self.cost(&r);
            if c < best.1 {
                best = (Decision::Factor(v), c);
            }
            if try_shannon {
                let f0 = expr.restrict(v, false);
                let f1 = expr.restrict(v, true);
                let c = MUX_COST + self.cost(&f0) + self.cost(&f1);
                if c < best.1 {
                    best = (Decision::Shannon(v), c);
                }
            }
        }
        best
    }

    /// Estimated implementation cost of `expr` in gate-equivalents,
    /// without emitting anything.
    ///
    /// This is the same cost model [`Synthesizer::emit`] plans with
    /// (factoring vs Shannon vs the direct forms), so callers can price
    /// alternative expressions — e.g. a divisor rewrite, or two candidate
    /// hierarchies — by how they would actually map, rather than by raw
    /// literal counts (which undervalue OR/majority-shaped cones the
    /// emitter handles specially). Variables are priced as free inputs;
    /// plans are memoised across calls, so repeated estimates over
    /// overlapping expressions are cheap. Deterministic.
    pub fn estimate(&mut self, expr: &Anf) -> f64 {
        self.planned = 0;
        self.cost(expr)
    }

    /// Builds `expr` into `nl`, returning the output node.
    pub fn emit(&mut self, nl: &mut Netlist, expr: &Anf) -> NodeId {
        // Each top-level cone gets the full planning budget (cached plans
        // from earlier cones are still reused).
        self.planned = 0;
        self.emit_inner(nl, expr)
    }

    fn emit_inner(&mut self, nl: &mut Netlist, expr: &Anf) -> NodeId {
        if expr.is_zero() {
            return nl.constant(false);
        }
        if expr.is_one() {
            return nl.constant(true);
        }
        if let Some(v) = expr.as_literal() {
            return self.node_for_var(nl, v);
        }
        if let Some(&n) = self.memo.get(expr) {
            return n;
        }
        let n = self.emit_uncached(nl, expr);
        self.memo.insert(expr.clone(), n);
        n
    }

    fn emit_uncached(&mut self, nl: &mut Netlist, expr: &Anf) -> NodeId {
        match self.plan(expr).0 {
            Decision::PeelOne => {
                let inner = self.emit_inner(nl, &expr.xor(&Anf::one()));
                nl.not(inner)
            }
            Decision::Monomial => {
                let term = expr.terms().next().expect("one term").clone();
                let nodes: Vec<NodeId> =
                    term.vars().map(|v| self.node_for_var(nl, v)).collect();
                nl.and_many(&nodes)
            }
            Decision::Linear => {
                let nodes: Vec<NodeId> = expr
                    .terms()
                    .map(|t| {
                        let v = t.vars().next().expect("degree-1 term");
                        self.node_for_var(nl, v)
                    })
                    .collect();
                nl.xor_many(&nodes)
            }
            Decision::Majority => {
                let vars: Vec<Var> = expr.support().iter().collect();
                let (a, b, c) = (
                    self.node_for_var(nl, vars[0]),
                    self.node_for_var(nl, vars[1]),
                    self.node_for_var(nl, vars[2]),
                );
                nl.maj(a, b, c)
            }
            Decision::OrOfLiterals => {
                let nodes: Vec<NodeId> = expr
                    .support()
                    .iter()
                    .map(|v| self.node_for_var(nl, v))
                    .collect();
                nl.or_many(&nodes)
            }
            Decision::Shannon(v) => {
                let f0 = expr.restrict(v, false);
                let f1 = expr.restrict(v, true);
                let n0 = self.emit_inner(nl, &f0);
                let n1 = self.emit_inner(nl, &f1);
                let sel = self.node_for_var(nl, v);
                nl.mux(sel, n0, n1)
            }
            Decision::Factor(v) => {
                let (q, r) = factor_out(expr, v);
                let nq = self.emit_inner(nl, &q);
                let nv = self.node_for_var(nl, v);
                let prod = nl.and(nv, nq);
                if r.is_zero() {
                    prod
                } else {
                    let nr = self.emit_inner(nl, &r);
                    nl.xor(prod, nr)
                }
            }
        }
    }
}

/// Splits `expr = v·Q ⊕ R`, returning `(Q, R)`.
fn factor_out(expr: &Anf, v: Var) -> (Anf, Anf) {
    let mut q = Vec::new();
    let mut r = Vec::new();
    for t in expr.terms() {
        if t.contains(v) {
            q.push(t.without(v));
        } else {
            r.push(t.clone());
        }
    }
    (Anf::from_terms(q), Anf::from_terms(r))
}

/// Returns the variable occurring in the most terms (ties → lowest index).
fn most_frequent_var(expr: &Anf) -> Option<Var> {
    let mut counts: HashMap<Var, usize> = HashMap::new();
    for t in expr.terms() {
        for v in t.vars() {
            *counts.entry(v).or_default() += 1;
        }
    }
    counts
        .into_iter()
        .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v)))
        .map(|(v, _)| v)
}

/// Recognises `ab ⊕ bc ⊕ ca` over exactly three variables.
fn is_majority(expr: &Anf) -> bool {
    let support = expr.support();
    if support.len() != 3 || expr.term_count() != 3 {
        return false;
    }
    expr.terms().all(|t| t.degree() == 2)
}

/// Recognises the OR of all support literals (whose ANF is the XOR of all
/// `2^n − 1` nonempty subset products — e.g. the LZD's `V` leaders), so it
/// can be built as a balanced OR tree instead of a Shannon chain.
fn is_or_of_literals(expr: &Anf) -> bool {
    let support = expr.support();
    let n = support.len();
    if !(2..=10).contains(&n) || expr.term_count() != (1usize << n) - 1 {
        return false;
    }
    let mut acc = Anf::zero();
    for v in support.iter() {
        acc = acc.or(&Anf::var(v));
    }
    acc == *expr
}

/// Synthesises a list of named outputs with sharing between them, binding
/// all variables to primary inputs.
pub fn synthesize_outputs(outputs: &[(String, Anf)]) -> Netlist {
    let mut nl = Netlist::new();
    let mut synth = Synthesizer::new();
    for (name, expr) in outputs {
        let node = synth.emit(&mut nl, expr);
        nl.set_output(name, node);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::check_equiv_anf;
    use pd_anf::VarPool;

    fn check(src: &str) -> (Netlist, usize) {
        let mut pool = VarPool::new();
        let expr = Anf::parse(src, &mut pool).unwrap();
        let outputs = vec![("y".to_owned(), expr)];
        let nl = synthesize_outputs(&outputs);
        assert_eq!(
            check_equiv_anf(&nl, &outputs, 16, 42),
            None,
            "synthesis of {src} must be equivalent"
        );
        let n = nl.len();
        (nl, n)
    }

    #[test]
    fn simple_forms() {
        check("0");
        check("1");
        check("a");
        check("a*b");
        check("a ^ b ^ c");
        check("1 ^ a*b");
        check("a*b*c*d ^ 1");
    }

    #[test]
    fn majority_uses_single_gate() {
        let (nl, _) = check("a*b ^ b*c ^ c*a");
        let majs = nl
            .iter()
            .filter(|(_, g)| matches!(g, crate::gate::Gate::Maj(..)))
            .count();
        assert_eq!(majs, 1);
    }

    #[test]
    fn full_adder_sum_and_carry_share() {
        let mut pool = VarPool::new();
        let sum = Anf::parse("a ^ b ^ c", &mut pool).unwrap();
        let carry = Anf::parse("a*b ^ b*c ^ c*a", &mut pool).unwrap();
        let outputs = vec![("s".to_owned(), sum), ("co".to_owned(), carry)];
        let nl = synthesize_outputs(&outputs);
        assert_eq!(check_equiv_anf(&nl, &outputs, 8, 3), None);
        // 3 inputs + 2 XOR + 1 MAJ = 6 nodes.
        assert!(nl.len() <= 6, "got {} nodes", nl.len());
    }

    #[test]
    fn factoring_beats_flat_expansion() {
        // (a^b)(c^d) = 4 terms flat. Single-variable factoring yields
        // a(c^d) ^ b(c^d) with the (c^d) XOR shared by hashing:
        // 4 inputs + 1 xor + 2 and + 1 xor = 8 nodes (flat would be 11).
        let (nl, n) = check("a*c ^ a*d ^ b*c ^ b*d");
        let _ = nl;
        assert!(n <= 8, "expected factored form, got {n} nodes");
    }

    #[test]
    fn mux_pattern_uses_shannon() {
        // b ⊕ sb ⊕ sc = mux(s, b, c): 3 inputs + 1 mux.
        let (nl, n) = check("b ^ s*b ^ s*c");
        let muxes = nl
            .iter()
            .filter(|(_, g)| matches!(g, crate::gate::Gate::Mux { .. }))
            .count();
        assert_eq!(muxes, 1, "Shannon expansion should produce one mux");
        assert_eq!(n, 4);
    }

    #[test]
    fn larger_random_expressions_are_equivalent() {
        // Deterministic pseudo-random ANFs over 6 vars.
        let mut pool = VarPool::new();
        let vars: Vec<Var> = (0..6)
            .map(|i| pool.input(&format!("x{i}"), 0, i))
            .collect();
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..12 {
            let mut terms = Vec::new();
            for _ in 0..(next() % 10 + 1) {
                let mask = next() % 64;
                terms.push(pd_anf::Monomial::from_vars(
                    (0..6).filter(|i| mask >> i & 1 == 1).map(|i| vars[i as usize]),
                ));
            }
            let expr = Anf::from_terms(terms);
            let outputs = vec![("y".to_owned(), expr)];
            let nl = synthesize_outputs(&outputs);
            assert_eq!(check_equiv_anf(&nl, &outputs, 4, 9), None);
        }
    }

    #[test]
    fn estimate_tracks_emission_quality() {
        let mut pool = VarPool::new();
        let maj = Anf::parse("a*b ^ b*c ^ c*a", &mut pool).unwrap();
        let vars: Vec<Anf> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| Anf::parse(n, &mut pool).unwrap())
            .collect();
        let or4 = vars.iter().fold(Anf::zero(), |acc, v| acc.or(v));
        let mut synth = Synthesizer::new();
        // The cost model prices the special forms, not the literal count:
        // majority is one gate despite 6 literals, the 4-input OR three
        // gates despite 32 literals.
        assert_eq!(synth.estimate(&maj), 1.0);
        assert_eq!(synth.estimate(&or4), 3.0);
        assert!(synth.estimate(&or4) < or4.literal_count() as f64);
        // Trivial expressions are free.
        assert_eq!(synth.estimate(&Anf::zero()), 0.0);
        assert_eq!(synth.estimate(&Anf::parse("a", &mut pool).unwrap()), 0.0);
    }

    #[test]
    fn bind_redirects_variables() {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let s = pool.derived("s", 0);
        let mut nl = Netlist::new();
        let mut synth = Synthesizer::new();
        // s is bound to a^b rather than a primary input.
        let (na, nb) = (nl.input(a), nl.input(b));
        let inner = nl.xor(na, nb);
        synth.bind(s, inner);
        let expr = Anf::var(s).and(&Anf::var(a));
        let node = synth.emit(&mut nl, &expr);
        nl.set_output("y", node);
        let spec = vec![(
            "y".to_owned(),
            Anf::var(a).xor(&Anf::var(b)).and(&Anf::var(a)),
        )];
        assert_eq!(check_equiv_anf(&nl, &spec, 8, 5), None);
    }
}
