//! Sum-of-products descriptions.
//!
//! The paper's "Unoptimised (SOP)" baselines are circuits *described* in
//! two-level sum-of-products form (Fig. 1) and handed to the synthesis flow
//! as-is. [`Sop`] captures such a description and synthesises it literally:
//! an AND tree per cube and a balanced OR tree across cubes, with only the
//! local sharing a conventional flow would find (structural hashing).

use crate::gate::NodeId;
use crate::netlist::Netlist;
use pd_anf::{Anf, Var};

/// A product term with literal polarities: `(v, true)` is `v`, `(v, false)`
/// is `¬v`. The empty cube is the constant 1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cube(pub Vec<(Var, bool)>);

impl Cube {
    /// The cube's ANF: the product of `v` or `1⊕v` factors.
    pub fn to_anf(&self) -> Anf {
        let mut acc = Anf::one();
        for &(v, pol) in &self.0 {
            let lit = if pol { Anf::var(v) } else { Anf::var(v).not() };
            acc = acc.and(&lit);
        }
        acc
    }
}

/// A sum (OR) of cubes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Sop(pub Vec<Cube>);

impl Sop {
    /// An always-false SOP.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total number of literals (the conventional SOP size measure).
    pub fn literal_count(&self) -> usize {
        self.0.iter().map(|c| c.0.len()).sum()
    }

    /// Builds the OR-of-ANDs netlist for this description.
    ///
    /// AND/OR trees are balanced and arrival-aware; inverters are shared
    /// via structural hashing. No restructuring beyond that is performed —
    /// this is deliberately the "direct synthesis" baseline.
    pub fn synthesize(&self, nl: &mut Netlist) -> NodeId {
        let mut cube_nodes = Vec::with_capacity(self.0.len());
        for cube in &self.0 {
            let mut lits = Vec::with_capacity(cube.0.len());
            for &(v, pol) in &cube.0 {
                let n = nl.input(v);
                lits.push(if pol { n } else { nl.not(n) });
            }
            cube_nodes.push(nl.and_many(&lits));
        }
        nl.or_many(&cube_nodes)
    }

    /// Exact ANF of the OR of all cubes.
    ///
    /// ORs are expanded as `a ⊕ b ⊕ ab`, which can grow exponentially for
    /// heavily overlapping cubes; `term_cap` aborts the conversion when an
    /// intermediate result exceeds the cap.
    pub fn to_anf(&self, term_cap: usize) -> Option<Anf> {
        let mut acc = Anf::zero();
        for cube in &self.0 {
            acc = acc.or(&cube.to_anf());
            if acc.term_count() > term_cap {
                return None;
            }
        }
        Some(acc)
    }

    /// Exact ANF assuming the cubes are pairwise disjoint (no two cubes can
    /// be true simultaneously), in which case OR coincides with XOR. This is
    /// the situation in the LZD/LOD descriptions of the paper's Fig. 1.
    pub fn to_anf_disjoint(&self) -> Anf {
        Anf::xor_all(self.0.iter().map(Cube::to_anf).collect::<Vec<_>>().iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::check_equiv_anf;
    use pd_anf::VarPool;

    fn vars(pool: &mut VarPool, names: &[&str]) -> Vec<Var> {
        names.iter().map(|n| pool.var_or_input(n)).collect()
    }

    #[test]
    fn cube_anf_expands_complements() {
        let mut pool = VarPool::new();
        let v = vars(&mut pool, &["a", "b"]);
        let cube = Cube(vec![(v[0], true), (v[1], false)]);
        // a·(1⊕b) = a ⊕ ab
        assert_eq!(cube.to_anf(), Anf::parse("a ^ a*b", &mut pool).unwrap());
    }

    #[test]
    fn synthesis_matches_anf() {
        let mut pool = VarPool::new();
        let v = vars(&mut pool, &["a", "b", "c"]);
        let sop = Sop(vec![
            Cube(vec![(v[0], true), (v[1], true)]),
            Cube(vec![(v[1], false), (v[2], true)]),
            Cube(vec![(v[0], false)]),
        ]);
        let spec = sop.to_anf(1 << 16).unwrap();
        let mut nl = Netlist::new();
        let y = sop.synthesize(&mut nl);
        nl.set_output("y", y);
        assert_eq!(
            check_equiv_anf(&nl, &[("y".to_owned(), spec)], 8, 11),
            None
        );
    }

    #[test]
    fn disjoint_matches_general_when_disjoint() {
        let mut pool = VarPool::new();
        let v = vars(&mut pool, &["a", "b"]);
        // a·b and ¬a are disjoint.
        let sop = Sop(vec![
            Cube(vec![(v[0], true), (v[1], true)]),
            Cube(vec![(v[0], false)]),
        ]);
        assert_eq!(sop.to_anf(64).unwrap(), sop.to_anf_disjoint());
    }

    #[test]
    fn to_anf_caps() {
        let mut pool = VarPool::new();
        // Overlapping cubes grow; a tiny cap must trigger.
        let v = vars(&mut pool, &["a", "b", "c", "d", "e", "f", "g", "h"]);
        let cubes: Vec<Cube> = v.iter().map(|&x| Cube(vec![(x, true)])).collect();
        let sop = Sop(cubes);
        assert!(sop.to_anf(4).is_none());
        assert!(sop.to_anf(1 << 10).is_some());
    }

    #[test]
    fn empty_sop_is_zero() {
        let sop = Sop::zero();
        let mut nl = Netlist::new();
        let y = sop.synthesize(&mut nl);
        nl.set_output("y", y);
        assert!(matches!(nl.gate(y), crate::gate::Gate::Const(false)));
        assert_eq!(sop.to_anf(16), Some(Anf::zero()));
    }
}
