//! # pd-netlist — gate-level networks
//!
//! A hash-consed, append-only gate DAG with:
//!
//! * local folding and commutative canonicalisation on construction,
//! * cost-driven multi-level synthesis from [`pd_anf::Anf`] expressions
//!   ([`Synthesizer`]),
//! * literal synthesis of two-level SOP descriptions ([`Sop`]) for the
//!   paper's "Unoptimised" baselines,
//! * 64-way bit-parallel simulation and spec equivalence checking
//!   ([`sim`]),
//! * exact ANF extraction for polynomial-sized cones ([`extract`]),
//! * structural statistics quantifying the paper's fan-in/fan-out argument
//!   ([`stats`]), and DOT/Verilog export ([`export`]).
//!
//! ## Example
//!
//! ```
//! use pd_anf::{Anf, VarPool};
//! use pd_netlist::{synthesize_outputs, sim::check_equiv_anf};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut pool = VarPool::new();
//! let carry = Anf::parse("a*b ^ b*c ^ c*a", &mut pool)?;
//! let outputs = vec![("carry".to_owned(), carry)];
//! let netlist = synthesize_outputs(&outputs);
//! assert!(check_equiv_anf(&netlist, &outputs, 64, 0).is_none());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gate;
mod netlist;
mod sop;
mod synth;

pub mod export;
pub mod extract;
pub mod sim;
pub mod stats;
pub mod verilog;

pub use gate::{FaninIter, Gate, NodeId};
pub use netlist::{Netlist, TopologyError};
pub use sop::{Cube, Sop};
pub use stats::NetlistStats;
pub use synth::{synthesize_outputs, Synthesizer};
pub use verilog::{from_verilog, ParseVerilogError};
