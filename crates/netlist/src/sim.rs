//! Bit-parallel simulation and equivalence checking.
//!
//! Simulation packs 64 input assignments into one `u64` per signal, so a
//! full pass over the netlist evaluates 64 test vectors. Equivalence of a
//! netlist against its ANF specification is checked exhaustively for up to
//! [`EXHAUSTIVE_LIMIT`] inputs, and with randomised plus structured
//! (walking-ones/zeros) vectors above that.

use crate::gate::Gate;
use crate::netlist::Netlist;
use pd_anf::{Anf, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Largest input count for which [`check_equiv_anf`] is exhaustive.
pub const EXHAUSTIVE_LIMIT: usize = 20;

/// Default number of random 64-vector rounds used beyond the exhaustive
/// limit.
pub const DEFAULT_RANDOM_ROUNDS: usize = 2048;

/// Simulates one 64-lane pattern; `stimulus` maps each primary-input
/// variable to its 64 lane bits.
///
/// Returns the 64-lane value of every node.
///
/// # Panics
///
/// Panics if a primary input is missing from `stimulus`.
pub fn simulate64(netlist: &Netlist, stimulus: &HashMap<Var, u64>) -> Vec<u64> {
    let mut values = vec![0u64; netlist.len()];
    for (id, gate) in netlist.iter() {
        let v = match gate {
            Gate::Const(false) => 0,
            Gate::Const(true) => u64::MAX,
            Gate::Input(var) => *stimulus
                .get(&var)
                .unwrap_or_else(|| panic!("missing stimulus for input {var}")),
            Gate::Not(a) => !values[a.index()],
            Gate::And(a, b) => values[a.index()] & values[b.index()],
            Gate::Or(a, b) => values[a.index()] | values[b.index()],
            Gate::Xor(a, b) => values[a.index()] ^ values[b.index()],
            Gate::Mux { sel, lo, hi } => {
                let s = values[sel.index()];
                (s & values[hi.index()]) | (!s & values[lo.index()])
            }
            Gate::Maj(a, b, c) => {
                let (x, y, z) = (values[a.index()], values[b.index()], values[c.index()]);
                (x & y) | (y & z) | (z & x)
            }
        };
        values[id.index()] = v;
    }
    values
}

/// Evaluates the named outputs for a single scalar assignment.
pub fn evaluate(netlist: &Netlist, assignment: &HashMap<Var, bool>) -> HashMap<String, bool> {
    let stimulus: HashMap<Var, u64> = assignment
        .iter()
        .map(|(&v, &b)| (v, if b { u64::MAX } else { 0 }))
        .collect();
    let values = simulate64(netlist, &stimulus);
    netlist
        .outputs()
        .iter()
        .map(|(name, n)| (name.clone(), values[n.index()] & 1 == 1))
        .collect()
}

/// A mismatch found by equivalence checking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Name of the differing output.
    pub output: String,
    /// The input assignment exhibiting the difference.
    pub assignment: Vec<(Var, bool)>,
    /// Value computed by the netlist.
    pub netlist_value: bool,
    /// Value computed by the specification.
    pub spec_value: bool,
}

/// Exhaustive or randomised check that each named output of `netlist`
/// equals the corresponding specification expression.
///
/// `spec` pairs output names with ANF expressions over the netlist's input
/// variables. With at most [`EXHAUSTIVE_LIMIT`] inputs the check covers all
/// assignments; beyond that it uses `random_rounds` batches of 64 random
/// vectors plus walking-ones and walking-zeros patterns.
///
/// Returns the first mismatch found, or `None` when equivalent (to the
/// extent checked).
pub fn check_equiv_anf(
    netlist: &Netlist,
    spec: &[(String, Anf)],
    random_rounds: usize,
    seed: u64,
) -> Option<Mismatch> {
    let inputs: Vec<Var> = netlist.inputs().iter().map(|&(v, _)| v).collect();
    // Variables the spec mentions but the netlist never reads still need
    // stimulus values for spec evaluation.
    let mut all_vars = inputs.clone();
    for (_, e) in spec {
        for v in e.support().iter() {
            if !all_vars.contains(&v) {
                all_vars.push(v);
            }
        }
    }
    if all_vars.len() <= EXHAUSTIVE_LIMIT {
        exhaustive_check(netlist, spec, &all_vars)
    } else {
        sampled_check(netlist, spec, &all_vars, random_rounds, seed)
    }
}

fn run_batch(
    netlist: &Netlist,
    spec: &[(String, Anf)],
    vars: &[Var],
    stimulus: &HashMap<Var, u64>,
    lanes: usize,
) -> Option<Mismatch> {
    let values = simulate64(netlist, stimulus);
    for (name, expr) in spec {
        let want = expr.eval64(|v| stimulus.get(&v).copied().unwrap_or(0));
        let node = netlist
            .outputs()
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("netlist has no output named {name:?}"))
            .1;
        let got = values[node.index()];
        let diff = (want ^ got) & lane_mask(lanes);
        if diff != 0 {
            let lane = diff.trailing_zeros();
            let assignment: Vec<(Var, bool)> = vars
                .iter()
                .map(|&v| (v, stimulus.get(&v).copied().unwrap_or(0) >> lane & 1 == 1))
                .collect();
            return Some(Mismatch {
                output: name.clone(),
                assignment,
                netlist_value: got >> lane & 1 == 1,
                spec_value: want >> lane & 1 == 1,
            });
        }
    }
    None
}

fn lane_mask(lanes: usize) -> u64 {
    if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

fn exhaustive_check(
    netlist: &Netlist,
    spec: &[(String, Anf)],
    vars: &[Var],
) -> Option<Mismatch> {
    let n = vars.len();
    let total = 1usize << n;
    let batches = total.div_ceil(64);
    for batch in 0..batches {
        let mut stimulus = HashMap::with_capacity(n);
        for (j, &v) in vars.iter().enumerate() {
            let word = if j < 6 {
                // Lane i assigns bit (i >> j) & 1.
                let mut w = 0u64;
                for lane in 0..64u64 {
                    if lane >> j & 1 == 1 {
                        w |= 1 << lane;
                    }
                }
                w
            } else if (batch >> (j - 6)) & 1 == 1 {
                u64::MAX
            } else {
                0
            };
            stimulus.insert(v, word);
        }
        let lanes = (total - batch * 64).min(64);
        if let Some(m) = run_batch(netlist, spec, vars, &stimulus, lanes) {
            return Some(m);
        }
    }
    None
}

fn sampled_check(
    netlist: &Netlist,
    spec: &[(String, Anf)],
    vars: &[Var],
    random_rounds: usize,
    seed: u64,
) -> Option<Mismatch> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Structured patterns: all-zeros, all-ones, walking ones, walking zeros
    // across the variable list, packed 64 lanes at a time.
    let n = vars.len();
    let mut structured: Vec<Vec<bool>> = vec![vec![false; n], vec![true; n]];
    for i in 0..n {
        let mut one = vec![false; n];
        one[i] = true;
        structured.push(one);
        let mut zero = vec![true; n];
        zero[i] = false;
        structured.push(zero);
    }
    for chunk in structured.chunks(64) {
        let mut stimulus: HashMap<Var, u64> = HashMap::with_capacity(n);
        for (j, &v) in vars.iter().enumerate() {
            let mut w = 0u64;
            for (lane, pattern) in chunk.iter().enumerate() {
                if pattern[j] {
                    w |= 1 << lane;
                }
            }
            stimulus.insert(v, w);
        }
        if let Some(m) = run_batch(netlist, spec, vars, &stimulus, chunk.len()) {
            return Some(m);
        }
    }
    for _ in 0..random_rounds {
        let stimulus: HashMap<Var, u64> = vars.iter().map(|&v| (v, rng.gen())).collect();
        if let Some(m) = run_batch(netlist, spec, vars, &stimulus, 64) {
            return Some(m);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_anf::VarPool;

    #[test]
    fn xor_netlist_matches_spec() {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let mut nl = Netlist::new();
        let (na, nb) = (nl.input(a), nl.input(b));
        let x = nl.xor(na, nb);
        nl.set_output("y", x);
        let spec = vec![(
            "y".to_owned(),
            Anf::var(a).xor(&Anf::var(b)),
        )];
        assert_eq!(check_equiv_anf(&nl, &spec, 8, 1), None);
    }

    #[test]
    fn detects_mismatch() {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let mut nl = Netlist::new();
        let (na, nb) = (nl.input(a), nl.input(b));
        let x = nl.and(na, nb); // wrong gate
        nl.set_output("y", x);
        let spec = vec![("y".to_owned(), Anf::var(a).xor(&Anf::var(b)))];
        let m = check_equiv_anf(&nl, &spec, 8, 1).expect("must differ");
        assert_eq!(m.output, "y");
        assert_ne!(m.netlist_value, m.spec_value);
    }

    #[test]
    fn maj_and_mux_simulate_correctly() {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let c = pool.input("c", 0, 2);
        let mut nl = Netlist::new();
        let (na, nb, nc) = (nl.input(a), nl.input(b), nl.input(c));
        let m = nl.maj(na, nb, nc);
        let x = nl.mux(na, nb, nc);
        nl.set_output("maj", m);
        nl.set_output("mux", x);
        let maj_spec = Anf::parse("a*b ^ b*c ^ c*a", &mut pool).unwrap();
        let mux_spec = Anf::parse("b ^ a*b ^ a*c", &mut pool).unwrap();
        let spec = vec![
            ("maj".to_owned(), maj_spec),
            ("mux".to_owned(), mux_spec),
        ];
        assert_eq!(check_equiv_anf(&nl, &spec, 8, 7), None);
    }

    #[test]
    fn spec_only_vars_get_stimulus() {
        // The netlist ignores `b`, but the (wrong) spec mentions it.
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let mut nl = Netlist::new();
        let na = nl.input(a);
        nl.set_output("y", na);
        let spec = vec![("y".to_owned(), Anf::var(a).xor(&Anf::var(b)))];
        assert!(check_equiv_anf(&nl, &spec, 8, 3).is_some());
    }
}
