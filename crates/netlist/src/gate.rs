//! Gate primitives of the technology-independent netlist.

use pd_anf::Var;
use std::fmt;

/// Index of a node within a [`crate::Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index into the node table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index, as reported by [`NodeId::index`].
    ///
    /// Only meaningful against the netlist the index came from; used by
    /// snapshot rehydration ([`crate::Netlist::from_parts`]) and mapped-
    /// netlist deserialisation, which replay ids positionally.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("netlist node index fits in u32"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A technology-independent gate.
///
/// Inputs always refer to earlier nodes, so node order is a topological
/// order. Arity is at most three; wider operations are built as balanced
/// trees by [`crate::Netlist`] helper methods.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Gate {
    /// Constant 0 or 1.
    Const(bool),
    /// A primary input carrying the given specification variable.
    Input(Var),
    /// Inverter.
    Not(NodeId),
    /// 2-input AND.
    And(NodeId, NodeId),
    /// 2-input OR.
    Or(NodeId, NodeId),
    /// 2-input XOR.
    Xor(NodeId, NodeId),
    /// 2:1 multiplexer: output = `if sel { hi } else { lo }`.
    Mux {
        /// Select input.
        sel: NodeId,
        /// Output when `sel = 0`.
        lo: NodeId,
        /// Output when `sel = 1`.
        hi: NodeId,
    },
    /// 3-input majority (the carry function of a full adder).
    Maj(NodeId, NodeId, NodeId),
}

impl Gate {
    /// The fan-in nodes of this gate, in order.
    pub fn fanins(&self) -> FaninIter {
        let (buf, len) = match *self {
            Gate::Const(_) | Gate::Input(_) => ([NodeId(0); 3], 0),
            Gate::Not(a) => ([a, NodeId(0), NodeId(0)], 1),
            Gate::And(a, b) | Gate::Or(a, b) | Gate::Xor(a, b) => ([a, b, NodeId(0)], 2),
            Gate::Mux { sel, lo, hi } => ([sel, lo, hi], 3),
            Gate::Maj(a, b, c) => ([a, b, c], 3),
        };
        FaninIter { buf, len, pos: 0 }
    }

    /// Number of fan-in edges.
    pub fn arity(&self) -> usize {
        self.fanins().len
    }

    /// A short lowercase mnemonic (`and`, `xor`, …).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Gate::Const(false) => "const0",
            Gate::Const(true) => "const1",
            Gate::Input(_) => "input",
            Gate::Not(_) => "not",
            Gate::And(..) => "and",
            Gate::Or(..) => "or",
            Gate::Xor(..) => "xor",
            Gate::Mux { .. } => "mux",
            Gate::Maj(..) => "maj",
        }
    }
}

/// Iterator over a gate's fan-in nodes (returned by [`Gate::fanins`]).
#[derive(Clone, Debug)]
pub struct FaninIter {
    buf: [NodeId; 3],
    len: usize,
    pos: usize,
}

impl Iterator for FaninIter {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        if self.pos < self.len {
            self.pos += 1;
            Some(self.buf[self.pos - 1])
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for FaninIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanins_in_order() {
        let g = Gate::Mux {
            sel: NodeId(1),
            lo: NodeId(2),
            hi: NodeId(3),
        };
        let got: Vec<u32> = g.fanins().map(|n| n.0).collect();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(g.arity(), 3);
        assert_eq!(Gate::Const(true).arity(), 0);
        assert_eq!(Gate::Not(NodeId(0)).arity(), 1);
    }

    #[test]
    fn mnemonics() {
        assert_eq!(Gate::And(NodeId(0), NodeId(1)).mnemonic(), "and");
        assert_eq!(Gate::Const(false).mnemonic(), "const0");
    }
}
