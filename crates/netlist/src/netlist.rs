//! The hash-consed gate network.
//!
//! [`Netlist`] is an append-only DAG with structural hashing and local
//! constant/identity folding. It plays the role of the circuit description
//! handed to the downstream synthesis flow: builders in `pd-arith` write
//! baseline architectures into it directly, and `pd-core` emits the
//! hierarchical implementation produced by Progressive Decomposition.

use crate::gate::{Gate, NodeId};
use pd_anf::Var;
use std::collections::HashMap;
use std::fmt;

/// A fan-in reference that does not precede its gate.
///
/// Returned by [`Netlist::inline`] when the source netlist is not
/// topologically ordered (every fan-in id must be lower than its gate's
/// id); see there for why the assumption is checked rather than assumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologyError {
    /// The gate whose fan-in is out of order.
    pub node: NodeId,
    /// The offending fan-in (its id is not lower than `node`'s).
    pub fanin: NodeId,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist is not topologically ordered: node {} references fan-in {}",
            self.node.index(),
            self.fanin.index()
        )
    }
}

impl std::error::Error for TopologyError {}

/// A combinational gate-level netlist with named outputs.
///
/// Nodes are hash-consed: building the same gate over the same fan-ins
/// twice returns the same [`NodeId`], so logically shared structure is
/// physically shared. Constant and identity folds (`x⊕x = 0`,
/// `x·x = x`, `¬¬x = x`, …) are applied on construction.
///
/// # Examples
///
/// ```
/// use pd_netlist::Netlist;
/// use pd_anf::{Var, VarPool};
/// let mut pool = VarPool::new();
/// let a = pool.input("a", 0, 0);
/// let b = pool.input("b", 0, 1);
/// let mut nl = Netlist::new();
/// let (na, nb) = (nl.input(a), nl.input(b));
/// let s = nl.xor(na, nb);
/// let s2 = nl.xor(na, nb);
/// assert_eq!(s, s2); // structural hashing
/// nl.set_output("sum", s);
/// assert_eq!(nl.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    nodes: Vec<Gate>,
    dedup: HashMap<Gate, NodeId>,
    input_nodes: HashMap<Var, NodeId>,
    outputs: Vec<(String, NodeId)>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes (including inputs and constants).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The gate at `id`.
    pub fn gate(&self, id: NodeId) -> Gate {
        self.nodes[id.index()]
    }

    /// Iterates over `(id, gate)` in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Gate)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, &g)| (NodeId(i as u32), g))
    }

    /// The primary inputs as `(variable, node)` pairs, in insertion order.
    pub fn inputs(&self) -> Vec<(Var, NodeId)> {
        let mut v: Vec<(Var, NodeId)> = self.input_nodes.iter().map(|(&k, &n)| (k, n)).collect();
        v.sort_by_key(|&(_, n)| n);
        v
    }

    /// The named outputs, in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Declares (or redeclares) a named output.
    pub fn set_output(&mut self, name: &str, node: NodeId) {
        if let Some(slot) = self.outputs.iter_mut().find(|(n, _)| n == name) {
            slot.1 = node;
        } else {
            self.outputs.push((name.to_owned(), node));
        }
    }

    /// Rebuilds a netlist verbatim from its node table and outputs, as
    /// walked by [`Netlist::iter`]/[`Netlist::outputs`]. Unlike building
    /// through the gate constructors, no hash-consing or folding is
    /// re-applied — node ids are preserved positionally — so a snapshot
    /// written by the flow's stage cache rehydrates bit-identically even
    /// though its gates were originally produced through folds that a
    /// replay could simplify away.
    ///
    /// # Panics
    ///
    /// Panics if a gate references a fan-in at or above its own index
    /// (the table is not topologically ordered) or an output names a
    /// node outside the table.
    pub fn from_parts(nodes: Vec<Gate>, outputs: Vec<(String, NodeId)>) -> Self {
        let mut dedup = HashMap::new();
        let mut input_nodes = HashMap::new();
        for (i, &gate) in nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            for fanin in gate.fanins() {
                assert!(
                    fanin.index() < i,
                    "netlist snapshot not topological: node {i} references {fanin}"
                );
            }
            // First occurrence wins, matching what `push` built: later
            // structural duplicates (possible if the source was edited
            // in place) stay in the table but out of the index.
            dedup.entry(gate).or_insert(id);
            if let Gate::Input(v) = gate {
                input_nodes.entry(v).or_insert(id);
            }
        }
        for (name, node) in &outputs {
            assert!(
                node.index() < nodes.len(),
                "netlist snapshot output {name:?} references missing node {node}"
            );
        }
        Self {
            nodes,
            dedup,
            input_nodes,
            outputs,
        }
    }

    fn push(&mut self, gate: Gate) -> NodeId {
        if let Some(&id) = self.dedup.get(&gate) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(gate);
        self.dedup.insert(gate, id);
        id
    }

    /// The constant node for `value`.
    pub fn constant(&mut self, value: bool) -> NodeId {
        self.push(Gate::Const(value))
    }

    /// The primary-input node for `v` (created on first use).
    pub fn input(&mut self, v: Var) -> NodeId {
        if let Some(&id) = self.input_nodes.get(&v) {
            return id;
        }
        let id = self.push(Gate::Input(v));
        self.input_nodes.insert(v, id);
        id
    }

    fn const_value(&self, id: NodeId) -> Option<bool> {
        match self.gate(id) {
            Gate::Const(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the node `b` with `a = ¬b`, if `a` is an inverter.
    fn inv_of(&self, id: NodeId) -> Option<NodeId> {
        match self.gate(id) {
            Gate::Not(x) => Some(x),
            _ => None,
        }
    }

    fn is_complement_pair(&self, a: NodeId, b: NodeId) -> bool {
        self.inv_of(a) == Some(b) || self.inv_of(b) == Some(a)
    }

    /// Inverter with folding (`¬¬x = x`, constants).
    pub fn not(&mut self, a: NodeId) -> NodeId {
        if let Some(v) = self.const_value(a) {
            return self.constant(!v);
        }
        if let Some(x) = self.inv_of(a) {
            return x;
        }
        self.push(Gate::Not(a))
    }

    /// AND with folding and commutative canonicalisation.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(false), _) | (_, Some(false)) => return self.constant(false),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if self.is_complement_pair(a, b) {
            return self.constant(false);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.push(Gate::And(a, b))
    }

    /// OR with folding and commutative canonicalisation.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(true), _) | (_, Some(true)) => return self.constant(true),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if self.is_complement_pair(a, b) {
            return self.constant(true);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.push(Gate::Or(a, b))
    }

    /// XOR with folding and commutative canonicalisation.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        match (self.const_value(a), self.const_value(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return self.not(b),
            (_, Some(true)) => return self.not(a),
            _ => {}
        }
        if a == b {
            return self.constant(false);
        }
        if self.is_complement_pair(a, b) {
            return self.constant(true);
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        self.push(Gate::Xor(a, b))
    }

    /// XNOR (`¬(a⊕b)`).
    pub fn xnor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// 2:1 mux with folding.
    pub fn mux(&mut self, sel: NodeId, lo: NodeId, hi: NodeId) -> NodeId {
        if let Some(s) = self.const_value(sel) {
            return if s { hi } else { lo };
        }
        if lo == hi {
            return lo;
        }
        match (self.const_value(lo), self.const_value(hi)) {
            (Some(false), Some(true)) => return sel,
            (Some(true), Some(false)) => return self.not(sel),
            (Some(false), None) => return self.and(sel, hi),
            (None, Some(true)) => return self.or(sel, lo),
            (Some(true), None) => {
                let ns = self.not(sel);
                return self.or(ns, hi);
            }
            (None, Some(false)) => {
                let ns = self.not(sel);
                return self.and(ns, lo);
            }
            _ => {}
        }
        if sel == hi {
            // mux(s, lo, s) = s ? 1·… : lo with hi=s ⇒ or(and(s,s), and(!s,lo)) = s | lo… careful:
            // sel=1 ⇒ hi=1; sel=0 ⇒ lo. That is or(sel, lo)? No: sel=1 gives hi=sel=1. Yes.
            return self.or(sel, lo);
        }
        if sel == lo {
            // sel=0 ⇒ lo=0; sel=1 ⇒ hi. That is and(sel, hi).
            return self.and(sel, hi);
        }
        self.push(Gate::Mux { sel, lo, hi })
    }

    /// 3-input majority with folding and input sorting.
    pub fn maj(&mut self, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
        let mut v = [a, b, c];
        v.sort();
        let [a, b, c] = v;
        if a == b {
            return a;
        }
        if b == c {
            return b;
        }
        if let Some(x) = self.const_value(a) {
            // a is the smallest id; constants are created early but inputs
            // may be earlier — handle every position anyway below.
            return if x { self.or(b, c) } else { self.and(b, c) };
        }
        if let Some(x) = self.const_value(b) {
            return if x { self.or(a, c) } else { self.and(a, c) };
        }
        if let Some(x) = self.const_value(c) {
            return if x { self.or(a, b) } else { self.and(a, b) };
        }
        self.push(Gate::Maj(a, b, c))
    }

    /// 3-input XOR as a two-level tree.
    pub fn xor3(&mut self, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
        let ab = self.xor(a, b);
        self.xor(ab, c)
    }

    /// Full adder: returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
        (self.xor3(a, b, cin), self.maj(a, b, cin))
    }

    /// Half adder: returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        (self.xor(a, b), self.and(a, b))
    }

    /// Unit-delay depth of each node (inputs/constants at level 0).
    pub fn levels(&self) -> Vec<u32> {
        let mut lv = vec![0u32; self.nodes.len()];
        for (i, g) in self.nodes.iter().enumerate() {
            lv[i] = g
                .fanins()
                .map(|f| lv[f.index()] + 1)
                .max()
                .unwrap_or(0);
        }
        lv
    }

    fn reduce_tree(
        &mut self,
        nodes: &[NodeId],
        empty: bool,
        op: impl Fn(&mut Self, NodeId, NodeId) -> NodeId,
    ) -> NodeId {
        match nodes.len() {
            0 => return self.constant(empty),
            1 => return nodes[0],
            _ => {}
        }
        // Delay-aware (Huffman-style) reduction: always combine the two
        // shallowest operands so the result tree is balanced even when the
        // operands arrive at different logic depths.
        let levels = self.levels();
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, NodeId)>> = nodes
            .iter()
            .map(|&n| std::cmp::Reverse((levels[n.index()], n)))
            .collect();
        while heap.len() > 1 {
            let std::cmp::Reverse((la, a)) = heap.pop().expect("len>1");
            let std::cmp::Reverse((lb, b)) = heap.pop().expect("len>1");
            let r = op(self, a, b);
            heap.push(std::cmp::Reverse((la.max(lb) + 1, r)));
        }
        heap.pop().expect("nonempty").0 .1
    }

    /// Balanced, arrival-aware XOR of many nodes (`0` when empty).
    pub fn xor_many(&mut self, nodes: &[NodeId]) -> NodeId {
        self.reduce_tree(nodes, false, Self::xor)
    }

    /// Balanced, arrival-aware AND of many nodes (`1` when empty).
    pub fn and_many(&mut self, nodes: &[NodeId]) -> NodeId {
        self.reduce_tree(nodes, true, Self::and)
    }

    /// Balanced, arrival-aware OR of many nodes (`0` when empty).
    pub fn or_many(&mut self, nodes: &[NodeId]) -> NodeId {
        self.reduce_tree(nodes, false, Self::or)
    }

    /// Fan-out count of every node, counting output pins once each.
    pub fn fanouts(&self) -> Vec<u32> {
        let mut fo = vec![0u32; self.nodes.len()];
        for g in &self.nodes {
            for f in g.fanins() {
                fo[f.index()] += 1;
            }
        }
        for (_, n) in &self.outputs {
            fo[n.index()] += 1;
        }
        fo
    }

    /// Nodes reachable from the outputs (live logic), as a boolean mask.
    pub fn live_mask(&self) -> Vec<bool> {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|&(_, n)| n).collect();
        while let Some(n) = stack.pop() {
            if live[n.index()] {
                continue;
            }
            live[n.index()] = true;
            stack.extend(self.gate(n).fanins());
        }
        live
    }

    /// Copies every node of `other` into this netlist, substituting the
    /// nodes of `bind` for `other`'s primary inputs (an input variable
    /// absent from `bind` becomes/reuses this netlist's own input node).
    ///
    /// Returns the node map: index `i` holds the node in `self`
    /// corresponding to `other`'s node `i`. Gate construction goes through
    /// the folding builders, so hash-consing and constant folds apply
    /// across the inlined logic — this is how the flow stitches per-block
    /// factored netlists into one implementation, wiring each block's
    /// leader variables to the nodes computing them.
    ///
    /// `other`'s output declarations are *not* copied; the caller decides
    /// which mapped nodes become outputs (or bindings for later blocks).
    ///
    /// # Errors
    ///
    /// The single pass requires `other` to be topologically ordered —
    /// every fan-in id lower than its gate's id, which the appending
    /// builders guarantee but externally assembled netlists may not.
    /// A forward (or self) reference returns [`TopologyError`] instead
    /// of panicking or silently wiring a stale node.
    pub fn inline(
        &mut self,
        other: &Netlist,
        bind: &HashMap<Var, NodeId>,
    ) -> Result<Vec<NodeId>, TopologyError> {
        let mut remap: Vec<NodeId> = Vec::with_capacity(other.len());
        for (id, gate) in other.iter() {
            for f in gate.fanins() {
                if f.index() >= remap.len() {
                    return Err(TopologyError {
                        node: id,
                        fanin: f,
                    });
                }
            }
            let new = match gate {
                Gate::Const(b) => self.constant(b),
                Gate::Input(v) => match bind.get(&v) {
                    Some(&n) => n,
                    None => self.input(v),
                },
                Gate::Not(a) => {
                    let a = remap[a.index()];
                    self.not(a)
                }
                Gate::And(a, b) => {
                    let (a, b) = (remap[a.index()], remap[b.index()]);
                    self.and(a, b)
                }
                Gate::Or(a, b) => {
                    let (a, b) = (remap[a.index()], remap[b.index()]);
                    self.or(a, b)
                }
                Gate::Xor(a, b) => {
                    let (a, b) = (remap[a.index()], remap[b.index()]);
                    self.xor(a, b)
                }
                Gate::Mux { sel, lo, hi } => {
                    let (s, l, h) = (remap[sel.index()], remap[lo.index()], remap[hi.index()]);
                    self.mux(s, l, h)
                }
                Gate::Maj(a, b, c) => {
                    let (a, b, c) = (remap[a.index()], remap[b.index()], remap[c.index()]);
                    self.maj(a, b, c)
                }
            };
            remap.push(new);
        }
        Ok(remap)
    }

    /// Returns a copy with dead nodes removed (outputs preserved).
    pub fn sweep(&self) -> Netlist {
        let live = self.live_mask();
        let mut out = Netlist::new();
        let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
        for (id, gate) in self.iter() {
            if !live[id.index()] {
                continue;
            }
            let new = match gate {
                Gate::Const(b) => out.constant(b),
                Gate::Input(v) => out.input(v),
                Gate::Not(a) => {
                    let a = remap[&a];
                    out.not(a)
                }
                Gate::And(a, b) => {
                    let (a, b) = (remap[&a], remap[&b]);
                    out.and(a, b)
                }
                Gate::Or(a, b) => {
                    let (a, b) = (remap[&a], remap[&b]);
                    out.or(a, b)
                }
                Gate::Xor(a, b) => {
                    let (a, b) = (remap[&a], remap[&b]);
                    out.xor(a, b)
                }
                Gate::Mux { sel, lo, hi } => {
                    let (s, l, h) = (remap[&sel], remap[&lo], remap[&hi]);
                    out.mux(s, l, h)
                }
                Gate::Maj(a, b, c) => {
                    let (a, b, c) = (remap[&a], remap[&b], remap[&c]);
                    out.maj(a, b, c)
                }
            };
            remap.insert(id, new);
        }
        for (name, n) in &self.outputs {
            out.set_output(name, remap[n]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pd_anf::VarPool;

    fn two_inputs() -> (Netlist, NodeId, NodeId) {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let mut nl = Netlist::new();
        let na = nl.input(a);
        let nb = nl.input(b);
        (nl, na, nb)
    }

    #[test]
    fn folding_rules() {
        let (mut nl, a, b) = two_inputs();
        let zero = nl.constant(false);
        let one = nl.constant(true);
        assert_eq!(nl.and(a, zero), zero);
        assert_eq!(nl.and(a, one), a);
        assert_eq!(nl.or(a, one), one);
        assert_eq!(nl.xor(a, zero), a);
        assert_eq!(nl.xor(a, a), zero);
        assert_eq!(nl.and(a, a), a);
        let na = nl.not(a);
        assert_eq!(nl.not(na), a);
        assert_eq!(nl.and(a, na), zero);
        assert_eq!(nl.or(a, na), one);
        assert_eq!(nl.xor(a, na), one);
        let _ = b;
    }

    #[test]
    fn structural_hashing_is_commutative() {
        let (mut nl, a, b) = two_inputs();
        assert_eq!(nl.and(a, b), nl.and(b, a));
        assert_eq!(nl.xor(a, b), nl.xor(b, a));
        let n1 = nl.len();
        nl.or(a, b);
        nl.or(b, a);
        assert_eq!(nl.len(), n1 + 1);
    }

    #[test]
    fn mux_folds() {
        let (mut nl, a, b) = two_inputs();
        let zero = nl.constant(false);
        let one = nl.constant(true);
        assert_eq!(nl.mux(a, zero, one), a);
        let m = nl.mux(a, one, zero);
        assert_eq!(nl.gate(m), Gate::Not(a));
        assert_eq!(nl.mux(one, a, b), b);
        assert_eq!(nl.mux(zero, a, b), a);
        assert_eq!(nl.mux(a, b, b), b);
        let and_ab = nl.and(a, b);
        assert_eq!(nl.mux(a, zero, b), and_ab);
    }

    #[test]
    fn maj_folds() {
        let (mut nl, a, b) = two_inputs();
        let zero = nl.constant(false);
        let one = nl.constant(true);
        let and_ab = nl.and(a, b);
        let or_ab = nl.or(a, b);
        assert_eq!(nl.maj(a, b, zero), and_ab);
        assert_eq!(nl.maj(a, b, one), or_ab);
        assert_eq!(nl.maj(a, a, b), a);
    }

    #[test]
    fn xor_many_is_balanced() {
        let mut pool = VarPool::new();
        let vars: Vec<_> = (0..8).map(|i| pool.input(&format!("x{i}"), 0, i)).collect();
        let mut nl = Netlist::new();
        let nodes: Vec<NodeId> = vars.iter().map(|&v| nl.input(v)).collect();
        let r = nl.xor_many(&nodes);
        let levels = nl.levels();
        assert_eq!(levels[r.index()], 3, "8 inputs reduce in 3 XOR levels");
    }

    #[test]
    fn sweep_removes_dead_logic() {
        let (mut nl, a, b) = two_inputs();
        let keep = nl.xor(a, b);
        let _dead = nl.and(a, b);
        nl.set_output("y", keep);
        let swept = nl.sweep();
        assert_eq!(swept.len(), 3);
        assert_eq!(swept.outputs().len(), 1);
    }

    #[test]
    fn inline_binds_inputs_and_shares_structure() {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let x = pool.derived("x", 1);
        // Inner block: y = x ⊕ b (x to be bound to a·b in the outer netlist).
        let mut inner = Netlist::new();
        let (nx, nb) = (inner.input(x), inner.input(b));
        let y = inner.xor(nx, nb);
        inner.set_output("y", y);
        // Outer netlist computes a·b, then inlines the block with x ↦ a·b.
        let mut outer = Netlist::new();
        let (na, nb2) = (outer.input(a), outer.input(b));
        let ab = outer.and(na, nb2);
        let bind: HashMap<Var, NodeId> = [(x, ab)].into_iter().collect();
        let map = outer
            .inline(&inner, &bind)
            .expect("builder netlists are ordered");
        outer.set_output("y", map[y.index()]);
        // x never became an input; b was shared, not duplicated.
        assert!(outer.inputs().iter().all(|&(v, _)| v != x));
        assert_eq!(outer.inputs().len(), 2);
        let spec = vec![(
            "y".to_owned(),
            pd_anf::Anf::parse("a*b ^ b", &mut pool).unwrap(),
        )];
        assert_eq!(crate::sim::check_equiv_anf(&outer, &spec, 16, 3), None);
    }

    #[test]
    fn inline_rejects_out_of_order_netlists() {
        // The public builders can only append in topological order, so
        // hand-assemble a netlist whose AND gate precedes its operands
        // (the shape a deserialiser or foreign importer could produce).
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let mut bad = Netlist::new();
        bad.nodes.push(Gate::And(NodeId(1), NodeId(2)));
        bad.nodes.push(Gate::Input(a));
        bad.nodes.push(Gate::Input(b));
        bad.input_nodes.insert(a, NodeId(1));
        bad.input_nodes.insert(b, NodeId(2));
        bad.outputs.push(("y".to_owned(), NodeId(0)));
        let mut target = Netlist::new();
        let err = target
            .inline(&bad, &HashMap::new())
            .expect_err("forward reference must be rejected");
        assert_eq!(err.node, NodeId(0));
        assert_eq!(err.fanin, NodeId(1));
        assert!(
            err.to_string().contains("topologically ordered"),
            "{err}"
        );
        // A self-reference is equally out of order.
        let mut cyclic = Netlist::new();
        cyclic.nodes.push(Gate::Not(NodeId(0)));
        let err = Netlist::new()
            .inline(&cyclic, &HashMap::new())
            .expect_err("self reference must be rejected");
        assert_eq!((err.node, err.fanin), (NodeId(0), NodeId(0)));
    }

    #[test]
    fn full_adder_has_sum_and_carry() {
        let mut pool = VarPool::new();
        let vars: Vec<_> = (0..3).map(|i| pool.input(&format!("x{i}"), 0, i)).collect();
        let mut nl = Netlist::new();
        let nodes: Vec<NodeId> = vars.iter().map(|&v| nl.input(v)).collect();
        let (s, co) = nl.full_adder(nodes[0], nodes[1], nodes[2]);
        assert_ne!(s, co);
        assert!(matches!(nl.gate(co), Gate::Maj(..)));
    }

    #[test]
    fn levels_track_depth() {
        let (mut nl, a, b) = two_inputs();
        let x = nl.xor(a, b);
        let y = nl.and(x, a);
        let lv = nl.levels();
        assert_eq!(lv[a.index()], 0);
        assert_eq!(lv[x.index()], 1);
        assert_eq!(lv[y.index()], 2);
    }
}
