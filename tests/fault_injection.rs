//! Deterministic fault-injection matrix over the flow's degradation
//! ladders: every `PD_FAULT=<stage>:<mode>:<count>` combination must end
//! in either a completed flow with the degradation recorded in the stage
//! report, or a typed [`FlowError`] in the circuit's slot — never a
//! process abort. Faults are injected in child `pd` processes because
//! `PD_FAULT` is read once per process (`FlowConfig::default`).
//!
//! [`FlowError`]: progressive_decomposition::flow::FlowError

use progressive_decomposition::flow::json::Json;

/// What a faulted `pd flow maj7` run must report.
enum Expect {
    /// Exit 0; the named stage degraded to the named rung and every
    /// surviving boundary stayed BDD-green.
    Degraded(&'static str, &'static str),
    /// Exit 0; the named stage completed on its first rung but recorded
    /// the given substring in `degradation_reason` (budget exhaustion,
    /// or an inert fault that found no injection point).
    Noted(&'static str, &'static str),
    /// Exit 0; the named stage committed with `"verified": false` and an
    /// explicit `unverified` degradation note (oracle capacity exhausted
    /// at the stage's final rung); every other boundary stayed green.
    Unverified(&'static str),
    /// Exit 1 (a *typed* failure, not a signal); the slot's `error`
    /// contains the substring.
    Failed(&'static str),
}

/// Runs `pd flow maj7 --out <path>` with a scrubbed environment plus the
/// given fault plan, returning (exit code, parsed stats document).
fn run_faulted(dir: &std::path::Path, fault: &str) -> (Option<i32>, Json) {
    let out_path = dir.join(format!("{}.json", fault.replace(':', "-")));
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_pd"));
    cmd.arg("flow")
        .arg("maj7")
        .arg("--out")
        .arg(&out_path)
        .env_remove("PD_NAIVE_KERNEL")
        .env_remove("PD_SKIP_VERIFY")
        .env_remove("PD_FULL_REDUCE")
        .env_remove("PD_LOCAL_FACTOR")
        .env_remove("PD_THREADS")
        .env_remove("PD_BUDGET_DECOMPOSE")
        .env_remove("PD_BUDGET_REDUCE")
        .env_remove("PD_BUDGET_FACTOR")
        .env_remove("PD_NODE_CAP")
        .env_remove("PD_DVO")
        .env("PD_FAULT", fault);
    let out = cmd.output().expect("spawn pd flow");
    let doc = std::fs::read_to_string(&out_path)
        .unwrap_or_else(|e| panic!("fault {fault}: stats not written: {e}"));
    let parsed = Json::parse(&doc).unwrap_or_else(|e| panic!("fault {fault}: bad stats: {e}"));
    (out.status.code(), parsed)
}

/// Pulls the single circuit object out of a stats document.
fn circuit(doc: &Json) -> &Json {
    &doc.get("circuits").and_then(Json::as_arr).expect("circuits")[0]
}

/// Finds the named stage's report within a circuit object.
fn stage<'a>(circuit: &'a Json, name: &str) -> &'a Json {
    circuit
        .get("stages")
        .and_then(Json::as_arr)
        .expect("stages")
        .iter()
        .find(|s| s.get("stage").and_then(Json::as_str) == Some(name))
        .unwrap_or_else(|| panic!("no {name} stage in report"))
}

/// No surviving verify boundary may be red. (Pass-through rungs — e.g.
/// Factor's `skip` — run no oracle and report no verdict; that is not a
/// failure, the netlist they hand on was verified upstream.)
fn assert_boundaries_green(circuit: &Json, fault: &str) {
    for s in circuit.get("stages").and_then(Json::as_arr).expect("stages") {
        let name = s.get("stage").and_then(Json::as_str).unwrap_or("?");
        assert_ne!(
            s.get("verified").and_then(Json::as_bool),
            Some(false),
            "fault {fault}: stage {name} boundary is red"
        );
    }
}

#[test]
fn every_fault_mode_on_every_stage_degrades_or_fails_typed() {
    let dir = std::env::temp_dir().join(format!("pd-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    use Expect::*;
    let matrix: &[(&str, Expect)] = &[
        // Panic faults walk each ladder rung by rung; one past the last
        // rung is a typed failure (after the batch's safe-config retry).
        ("decompose:panic:1", Failed("injected fault")),
        ("reduce:panic:1", Degraded("reduce", "worklist-only")),
        ("reduce:panic:2", Degraded("reduce", "full-reduce")),
        ("reduce:panic:3", Failed("injected fault")),
        ("factor:panic:1", Degraded("factor", "local")),
        ("factor:panic:2", Degraded("factor", "skip")),
        ("factor:panic:3", Failed("injected fault")),
        ("techmap:panic:1", Degraded("techmap", "greedy")),
        ("techmap:panic:2", Failed("injected fault")),
        ("sta:panic:1", Failed("injected fault")),
        // Budget faults zero the stage's effort meter: stages with a
        // meter record the exhaustion and keep going; stages without one
        // record the fault as inert.
        ("decompose:budget:1", Noted("decompose", "effort budget exhausted")),
        ("reduce:budget:1", Noted("reduce", "effort budget exhausted")),
        ("factor:budget:1", Noted("factor", "effort budget exhausted")),
        ("techmap:budget:1", Noted("techmap", "inert")),
        ("sta:budget:1", Noted("sta", "inert")),
        // Mismatch faults poison the stage's verify verdict: ladders
        // fall to their next rung; the single-rung Decompose ladder
        // fails typed; Sta has no boundary to poison.
        ("decompose:mismatch:1", Failed("broke output")),
        ("reduce:mismatch:1", Degraded("reduce", "worklist-only")),
        ("factor:mismatch:1", Degraded("factor", "local")),
        ("techmap:mismatch:1", Degraded("techmap", "greedy")),
        ("sta:mismatch:1", Noted("sta", "inert")),
        // Capacity faults starve the oracle (a tiny node cap defeats its
        // whole order ladder). Mid-ladder that fails the rung like any
        // other error; at a stage's *final* rung the boundary commits as
        // explicitly unverified instead of killing the flow.
        ("decompose:capacity:1", Unverified("decompose")),
        ("reduce:capacity:1", Degraded("reduce", "worklist-only")),
        ("factor:capacity:2", Degraded("factor", "skip")),
        ("techmap:capacity:2", Unverified("techmap")),
        ("sta:capacity:1", Noted("sta", "inert")),
    ];

    for (fault, expect) in matrix {
        let (code, doc) = run_faulted(&dir, fault);
        let c = circuit(&doc);
        assert!(code.is_some(), "fault {fault}: killed by signal, not typed");
        match expect {
            Degraded(stage_name, rung) => {
                assert_eq!(code, Some(0), "fault {fault}: flow should complete");
                let s = stage(c, stage_name);
                assert_eq!(
                    s.get("degraded").and_then(Json::as_str),
                    Some(*rung),
                    "fault {fault}: wrong surviving rung"
                );
                assert!(
                    s.get("degradation_reason").and_then(Json::as_str).is_some(),
                    "fault {fault}: degradation not explained"
                );
                assert_boundaries_green(c, fault);
            }
            Noted(stage_name, substr) => {
                assert_eq!(code, Some(0), "fault {fault}: flow should complete");
                let s = stage(c, stage_name);
                let reason = s
                    .get("degradation_reason")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| panic!("fault {fault}: no recorded reason"));
                assert!(
                    reason.contains(substr),
                    "fault {fault}: reason {reason:?} lacks {substr:?}"
                );
                assert_boundaries_green(c, fault);
            }
            Unverified(stage_name) => {
                assert_eq!(code, Some(0), "fault {fault}: flow should complete");
                let s = stage(c, stage_name);
                assert_eq!(
                    s.get("verified").and_then(Json::as_bool),
                    Some(false),
                    "fault {fault}: boundary should be explicitly unverified"
                );
                let reason = s
                    .get("degradation_reason")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| panic!("fault {fault}: no recorded reason"));
                assert!(
                    reason.contains("unverified"),
                    "fault {fault}: reason {reason:?} lacks \"unverified\""
                );
                for other in c.get("stages").and_then(Json::as_arr).expect("stages") {
                    if other.get("stage").and_then(Json::as_str) == Some(*stage_name) {
                        continue;
                    }
                    assert_ne!(
                        other.get("verified").and_then(Json::as_bool),
                        Some(false),
                        "fault {fault}: a sibling boundary went red"
                    );
                }
            }
            Failed(substr) => {
                assert_eq!(code, Some(1), "fault {fault}: expected typed failure");
                let err = c
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| panic!("fault {fault}: no error in slot"));
                assert!(
                    err.contains(substr),
                    "fault {fault}: error {err:?} lacks {substr:?}"
                );
            }
        }
    }
}

/// The deepest widely-reachable fallback rungs stay BDD-green on every
/// builtin generator: with Reduce panicking once per flow, all 11
/// circuits must still come out clean (the worklist-only rung carries
/// each of them through its verify boundary).
#[test]
fn degraded_reduce_stays_green_on_all_builtin_circuits() {
    let dir = std::env::temp_dir().join(format!("pd-fault-all-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out_path = dir.join("all.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_pd"))
        .arg("flow")
        .arg("all")
        .arg("--out")
        .arg(&out_path)
        .env_remove("PD_NAIVE_KERNEL")
        .env_remove("PD_SKIP_VERIFY")
        .env_remove("PD_FULL_REDUCE")
        .env_remove("PD_LOCAL_FACTOR")
        .env_remove("PD_BUDGET_DECOMPOSE")
        .env_remove("PD_BUDGET_REDUCE")
        .env_remove("PD_BUDGET_FACTOR")
        .env_remove("PD_NODE_CAP")
        .env_remove("PD_DVO")
        .env("PD_FAULT", "reduce:panic:1")
        .output()
        .expect("spawn pd flow all");
    assert!(
        out.status.success(),
        "faulted flow all failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("11/11 circuits clean"),
        "not all circuits clean under a degraded Reduce:\n{stdout}"
    );
    let doc = Json::parse(&std::fs::read_to_string(&out_path).expect("stats written"))
        .expect("stats parse");
    for c in doc.get("circuits").and_then(Json::as_arr).expect("circuits") {
        let name = c.get("name").and_then(Json::as_str).unwrap_or("?");
        let s = stage(c, "reduce");
        assert_eq!(
            s.get("degraded").and_then(Json::as_str),
            Some("worklist-only"),
            "{name}: reduce did not degrade"
        );
        assert_boundaries_green(c, name);
    }
}

/// A *crossed* effort budget is still deterministic: the same tight
/// `PD_BUDGET_REDUCE` yields bit-identical stage metrics (including
/// `effort_spent`) at `PD_THREADS=1` and `PD_THREADS=4`.
#[test]
fn budget_crossings_are_deterministic_across_thread_counts() {
    let dir = std::env::temp_dir().join(format!("pd-fault-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut fingerprints = Vec::new();
    for threads in ["1", "4"] {
        let out_path = dir.join(format!("det-t{threads}.json"));
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_pd"))
            .arg("flow")
            .arg("maj7")
            .arg("--out")
            .arg(&out_path)
            .env_remove("PD_NAIVE_KERNEL")
            .env_remove("PD_SKIP_VERIFY")
            .env_remove("PD_FULL_REDUCE")
            .env_remove("PD_LOCAL_FACTOR")
            .env_remove("PD_FAULT")
            .env_remove("PD_BUDGET_DECOMPOSE")
            .env_remove("PD_BUDGET_FACTOR")
            .env_remove("PD_NODE_CAP")
            .env_remove("PD_DVO")
            .env("PD_BUDGET_REDUCE", "3")
            .env("PD_THREADS", threads)
            .output()
            .expect("spawn pd flow");
        assert!(
            out.status.success(),
            "budgeted flow failed at {threads} threads:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let doc = Json::parse(&std::fs::read_to_string(&out_path).expect("stats written"))
            .expect("stats parse");
        let c = circuit(&doc);
        let fingerprint: Vec<String> = c
            .get("stages")
            .and_then(Json::as_arr)
            .expect("stages")
            .iter()
            .map(|s| {
                format!(
                    "{}:{:?}:{:?}:{:?}:{:?}:{:?}",
                    s.get("stage").and_then(Json::as_str).unwrap_or("?"),
                    s.get("literals").and_then(Json::as_num),
                    s.get("gates").and_then(Json::as_num),
                    s.get("cells").and_then(Json::as_num),
                    s.get("effort_spent").and_then(Json::as_num),
                    s.get("degradation_reason").and_then(Json::as_str),
                )
            })
            .collect();
        fingerprints.push(fingerprint);
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "budget crossing is thread-count dependent"
    );
}
