//! Integration tests of the synthesis-as-a-service layer: the
//! content-addressed stage cache (warm re-runs, prefix resume), the
//! cross-run divisor library, and the `pd serve` TCP job server.

use progressive_decomposition::flow::json::Json;
use progressive_decomposition::flow::{circuit_by_name, Flow, FlowConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn pd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pd"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pd-svc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Runs `pd flow <circuits> --out <out>` with the stage cache rooted at
/// `cache`, returning the parsed stats document.
fn flow_with_cache(circuits: &str, cache: &Path, out: &Path, threads: Option<&str>) -> Json {
    let mut cmd = pd();
    cmd.args(["flow", circuits, "--out", out.to_str().unwrap()])
        .env("PD_CACHE_DIR", cache);
    if let Some(t) = threads {
        cmd.env("PD_THREADS", t);
    }
    let output = cmd.output().expect("run pd flow");
    assert!(
        output.status.success(),
        "pd flow failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    Json::parse(&std::fs::read_to_string(out).expect("stats written")).expect("valid stats")
}

/// Deletes the content-addressed stage entries but keeps the divisor
/// library, so the next run factors live — seeded, not served.
fn clear_stage_entries(cache: &Path) {
    for entry in std::fs::read_dir(cache).expect("cache dir") {
        let path = entry.expect("entry").path();
        if path.file_name().is_some_and(|n| n != "divisors.lib") {
            std::fs::remove_file(&path).expect("remove stage entry");
        }
    }
}

fn circuits_of(stats: &Json) -> &[Json] {
    stats.get("circuits").and_then(Json::as_arr).expect("circuits array")
}

fn stage_metric(circuit: &Json, stage: &str, key: &str) -> Option<f64> {
    circuit
        .get("stages")?
        .as_arr()?
        .iter()
        .find(|s| s.get("stage").and_then(Json::as_str) == Some(stage))?
        .get(key)?
        .as_num()
}

const STAGES: [&str; 5] = ["decompose", "reduce", "factor", "techmap", "sta"];

#[test]
fn warm_rerun_serves_verified_stages_bit_identically() {
    let cache = temp_dir("warm");
    let cold = flow_with_cache("maj5,gray6", &cache, &cache.join("s1.json"), None);
    let warm = flow_with_cache("maj5,gray6", &cache, &cache.join("s2.json"), None);

    for (c, w) in circuits_of(&cold).iter().zip(circuits_of(&warm)) {
        let name = c.get("name").and_then(Json::as_str).unwrap();
        for (stage, doc, want) in STAGES
            .iter()
            .flat_map(|s| [(s, c, "miss"), (s, w, "hit")])
        {
            let cache_mark = doc
                .get("stages")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .find(|j| j.get("stage").and_then(Json::as_str) == Some(*stage))
                .and_then(|j| j.get("cache"))
                .and_then(Json::as_str);
            assert_eq!(cache_mark, Some(want), "{name}/{stage}");
        }
        // Served stages carry their original verify verdict forward.
        for stage in ["decompose", "reduce", "factor", "techmap"] {
            let s = w
                .get("stages")
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .find(|j| j.get("stage").and_then(Json::as_str) == Some(stage))
                .unwrap();
            assert_eq!(s.get("verified").and_then(Json::as_bool), Some(true));
            assert_eq!(
                s.get("verified_from_cache").and_then(Json::as_bool),
                Some(true),
                "{name}/{stage}"
            );
        }
        // Bit-identical metrics between cold and warm.
        for stage in STAGES {
            for key in ["literals", "gates", "cells", "area_um2", "delay_ns"] {
                assert_eq!(
                    stage_metric(c, stage, key),
                    stage_metric(w, stage, key),
                    "{name}/{stage}/{key} drifted between cold and warm"
                );
            }
        }
        assert_eq!(
            c.get("cells").and_then(Json::as_num),
            w.get("cells").and_then(Json::as_num),
            "{name} mapped cells"
        );
    }
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn prefix_resume_serves_cached_stages_then_computes() {
    let cache = temp_dir("prefix");
    let cfg = FlowConfig {
        cache_dir: Some(cache.clone()),
        divisor_library: None,
        ..FlowConfig::default()
    };
    let input = || circuit_by_name("maj5").unwrap();

    // First flow runs (and stores) only the first three stages.
    let mut head = Flow::new(input(), cfg.clone());
    for _ in 0..3 {
        head.run_next().expect("stage runs");
    }
    assert!(head
        .reports()
        .iter()
        .all(|r| r.cache.as_deref() == Some("miss")));
    drop(head);

    // Second flow resumes past the cached prefix: three hits, then live.
    let mut resumed = Flow::new(input(), cfg.clone());
    resumed.run_to_completion().expect("flow completes");
    let marks: Vec<_> = resumed
        .reports()
        .iter()
        .map(|r| r.cache.as_deref().unwrap().to_owned())
        .collect();
    assert_eq!(marks, ["hit", "hit", "hit", "miss", "miss"]);

    // Third flow serves everything.
    let mut warm = Flow::new(input(), cfg);
    let summary = warm.run_to_completion().expect("flow completes");
    assert!(warm
        .reports()
        .iter()
        .all(|r| r.cache.as_deref() == Some("hit")));
    assert_eq!(
        summary.cells,
        resumed.reports().iter().find_map(|r| r.cells).unwrap_or(0),
        "served result matches the computed one"
    );
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn library_seeded_factoring_is_thread_invariant_and_never_regresses_golden() {
    // Golden mapped cell counts from tests/table1_circuits.rs — the
    // advisory divisor library must never push a circuit above its pin.
    let golden = [("adder10", 44.0), ("counter12", 58.0)];
    let cache = temp_dir("seeded");

    // Cold run populates the cache and flushes the learned divisors.
    flow_with_cache("adder10,counter12", &cache, &cache.join("cold.json"), None);
    assert!(
        cache.join("divisors.lib").exists(),
        "cold run must flush a divisor library"
    );

    // Seeded live runs (stage entries cleared, library kept) at two
    // thread counts must be bit-identical, and within the golden pins.
    clear_stage_entries(&cache);
    let a = flow_with_cache("adder10,counter12", &cache, &cache.join("a.json"), Some("1"));
    clear_stage_entries(&cache);
    let b = flow_with_cache("adder10,counter12", &cache, &cache.join("b.json"), Some("4"));

    for ((ca, cb), (name, pin)) in circuits_of(&a).iter().zip(circuits_of(&b)).zip(golden) {
        assert_eq!(ca.get("name").and_then(Json::as_str), Some(name));
        for stage in STAGES {
            assert_eq!(
                stage_metric(ca, stage, "cache"),
                None,
                "{name}/{stage} must have run live"
            );
            for key in ["literals", "gates", "cells"] {
                assert_eq!(
                    stage_metric(ca, stage, key),
                    stage_metric(cb, stage, key),
                    "{name}/{stage}/{key} differs between PD_THREADS=1 and 4"
                );
            }
        }
        // The factor stage really consulted the library…
        assert!(
            stage_metric(ca, "factor", "library_seeds").is_some(),
            "{name}: factor stage did not report library seeding"
        );
        // …and the seeded result never regresses the golden pin.
        let cells = ca.get("cells").and_then(Json::as_num).unwrap();
        assert!(
            cells <= pin,
            "{name}: seeded run mapped {cells} cells, golden pin is {pin}"
        );
    }
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn serve_tcp_smoke() {
    let mut child = pd()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn pd serve");
    let mut lines = BufReader::new(child.stdout.take().expect("piped"))
        .lines()
        .map_while(Result::ok);
    let banner = lines.next().expect("banner line");
    let addr = banner
        .split("listening on ")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .expect("address in banner")
        .to_owned();

    let mut conn = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut request = |body: &str| -> Json {
        conn.write_all(format!("{body}\n").as_bytes()).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        Json::parse(&line).expect("valid response")
    };

    let r = request("{\"op\": \"submit\", \"spec\": {\"circuits\": [\"maj5\"]}}");
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true), "{r:?}");
    let job = r.get("job").and_then(Json::as_num).unwrap() as u64;

    let stats = loop {
        let s = request(&format!("{{\"op\": \"status\", \"job\": {job}}}"));
        assert_eq!(s.get("ok").and_then(Json::as_bool), Some(true), "{s:?}");
        if s.get("state").and_then(Json::as_str) == Some("done") {
            break request(&format!("{{\"op\": \"result\", \"job\": {job}}}"));
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    };
    let circuit = &stats.get("stats").unwrap().get("circuits").unwrap().as_arr().unwrap()[0];
    assert_eq!(circuit.get("name").and_then(Json::as_str), Some("maj5"));
    assert!(circuit.get("error").is_none(), "{stats:?}");

    let r = request("{\"op\": \"shutdown\"}");
    assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
    let status = child.wait().expect("server exits");
    assert!(status.success());
}
