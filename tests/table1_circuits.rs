//! End-to-end integration tests over the paper's benchmark circuits:
//! every decomposition must be functionally equivalent to its
//! specification (hierarchy evaluation AND emitted netlist), and the
//! structural claims of the paper must hold.

use progressive_decomposition::arith::{
    Adder, Comparator, Counter, Lod, Lzd, Majority, ThreeInputAdder,
};
use progressive_decomposition::flow::{circuit_by_name, StageKind};
use progressive_decomposition::netlist::sim::check_equiv_anf;
use progressive_decomposition::prelude::*;

fn decompose_and_check(
    pool: VarPool,
    spec: Vec<(String, Anf)>,
    seed: u64,
) -> Decomposition {
    let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(pool, spec.clone());
    assert_eq!(d.check_equivalence(256, seed), None, "hierarchy mismatch");
    let nl = d.to_netlist();
    assert_eq!(
        check_equiv_anf(&nl, &spec, 256, seed + 1),
        None,
        "netlist mismatch"
    );
    d
}

#[test]
fn lzd16_blocks_match_oklobdzija() {
    let lzd = Lzd::new(16);
    let d = decompose_and_check(lzd.pool.clone(), lzd.spec(), 11);
    // Paper §6: PD's 16-bit LZD is qualitatively identical to [8] —
    // the first level must be four 4-bit nibble blocks with exactly
    // three leaders (V, P1, P0) each.
    let level1: Vec<_> = d.blocks.iter().filter(|b| b.iteration <= 4).collect();
    assert_eq!(level1.len(), 4);
    for b in &level1 {
        assert_eq!(b.group.len(), 4, "nibble group");
        assert_eq!(
            b.basis.len() + b.passthrough.len(),
            3,
            "three leaders per nibble (V, P1, P0): {:?}",
            b.basis
        );
    }
}

#[test]
fn lod16_decomposes() {
    let lod = Lod::new(16);
    decompose_and_check(lod.pool.clone(), lod.spec(), 13);
}

#[test]
fn lod32_decomposes() {
    let lod = Lod::new(32);
    decompose_and_check(lod.pool.clone(), lod.spec(), 17);
}

#[test]
fn majority15_finds_counters() {
    let m = Majority::new(15);
    let d = decompose_and_check(m.pool.clone(), m.spec(), 19);
    // The first block must be a 4-bit parallel counter: group of 4 with
    // ≤3 leaders thanks to the s3 = s1·s2 substitution.
    let b0 = &d.blocks[0];
    assert_eq!(b0.group.len(), 4);
    assert!(b0.basis.len() <= 3, "{:?}", b0.basis);
    assert!(!b0.substitutions.is_empty());
}

#[test]
fn counter16_decomposes() {
    let c = Counter::new(16);
    let d = decompose_and_check(c.pool.clone(), c.spec(), 23);
    assert!(d.blocks.len() >= 4);
}

#[test]
fn adder12_decomposes_into_two_bit_slices() {
    let a = Adder::new(12);
    let d = decompose_and_check(a.pool.clone(), a.spec(), 29);
    // Primary groups are {a_i, a_i+1, b_i, b_i+1} two-bit slices.
    let b0 = &d.blocks[0];
    let names: Vec<&str> = b0.group.iter().map(|&v| d.pool.name(v)).collect();
    assert_eq!(names, vec!["a0", "a1", "b0", "b1"]);
}

#[test]
fn comparator10_decomposes() {
    let c = Comparator::new(10);
    decompose_and_check(c.pool.clone(), c.spec(), 31);
}

#[test]
fn three_input8_first_blocks_are_csa() {
    let t = ThreeInputAdder::new(8);
    let d = decompose_and_check(t.pool.clone(), t.spec(), 37);
    // k/r = 4/3 = 1 bit per word: the first group must be {a0, b0, c0}
    // and its basis a 3:2 counter (2 leaders: sum and carry).
    let b0 = &d.blocks[0];
    let names: Vec<&str> = b0.group.iter().map(|&v| d.pool.name(v)).collect();
    assert_eq!(names, vec!["a0", "b0", "c0"]);
    assert_eq!(
        b0.basis.len() + b0.passthrough.len(),
        2,
        "3:2 counter: {:?}",
        b0.basis
    );
}

#[test]
fn every_baseline_matches_its_spec() {
    // Cross-check all the manual baselines against the RM specs at
    // exhaustive-checkable widths.
    let lzd = Lzd::new(8);
    assert_eq!(check_equiv_anf(&lzd.sop_netlist(), &lzd.spec(), 64, 1), None);

    let c = Counter::new(10);
    assert_eq!(
        check_equiv_anf(&c.adder_tree_netlist(), &c.spec(), 64, 2),
        None
    );
    assert_eq!(check_equiv_anf(&c.tga_netlist(), &c.spec(), 64, 3), None);

    let a = Adder::new(9);
    let spec = a.spec();
    assert_eq!(check_equiv_anf(&a.rca_netlist(), &spec, 64, 4), None);
    assert_eq!(check_equiv_anf(&a.designware_netlist(), &spec, 64, 5), None);
    assert_eq!(check_equiv_anf(&a.sklansky_netlist(), &spec, 64, 6), None);

    let cmp = Comparator::new(9);
    let spec = cmp.spec();
    assert_eq!(check_equiv_anf(&cmp.progressive_netlist(), &spec, 64, 7), None);
    assert_eq!(check_equiv_anf(&cmp.subtracter_netlist(), &spec, 64, 8), None);

    let t = ThreeInputAdder::new(5);
    let spec = t.spec();
    assert_eq!(check_equiv_anf(&t.rca_rca_netlist(), &spec, 64, 9), None);
    assert_eq!(check_equiv_anf(&t.csa_adder_netlist(), &spec, 64, 10), None);
}

/// Golden end-to-end numbers: circuit → (literals after decompose,
/// after reduce, after factor, mapped cell count). Pinned from the flow's
/// first green run with the **global** Factor stage and the arbitrated
/// incremental Reduce (PR 5); deterministic across `PD_NAIVE_KERNEL` and
/// `PD_THREADS` (the CI naive-kernel job re-checks that). An intentional
/// heuristic change moves these — update the table alongside it.
const FLOW_GOLDEN: [(&str, [usize; 4]); 6] = [
    ("maj15", [243, 172, 160, 66]),
    ("counter12", [156, 137, 126, 58]),
    ("lzd12", [351, 249, 153, 40]),
    ("adder10", [117, 102, 97, 44]),
    ("comparator10", [133, 140, 140, 54]),
    ("three8", [172, 160, 155, 63]),
];

/// The same pins for the retained from-scratch Reduce path
/// (`PD_FULL_REDUCE=1` / [`FlowConfig::full_reduce`]), so the A/B
/// fallback is protected against silent drift too. Three circuits
/// suffice; the full battery runs on the incremental path. lzd12 is
/// pinned here because it anchors the incremental-vs-full cell-gap bound
/// below.
const FULL_REDUCE_GOLDEN: [(&str, [usize; 4]); 3] = [
    ("maj15", [243, 176, 165, 73]),
    ("counter12", [156, 137, 126, 58]),
    ("lzd12", [351, 249, 153, 40]),
];

/// Runs each golden circuit through the flow under `cfg` and returns a
/// human-readable diff of every mismatch (empty when all pins hold).
fn flow_golden_diff(golden: &[(&str, [usize; 4])], cfg: &FlowConfig) -> String {
    let mut diff = String::new();
    for (name, want) in golden {
        let input = circuit_by_name(name).expect("golden circuits resolve");
        let mut flow = Flow::new(input, cfg.clone());
        let summary = flow
            .run_to_completion()
            .unwrap_or_else(|e| panic!("{name}: flow failed: {e}"));
        for s in &summary.stages {
            assert_ne!(s.verified, Some(false), "{name}/{} oracle red", s.stage);
        }
        let stage_literals = |kind: StageKind| {
            summary
                .stages
                .iter()
                .find(|s| s.stage == kind)
                .and_then(|s| s.literals)
                .unwrap_or(0)
        };
        let got = [
            stage_literals(StageKind::Decompose),
            stage_literals(StageKind::Reduce),
            stage_literals(StageKind::Factor),
            summary.cells,
        ];
        if got != *want {
            use std::fmt::Write as _;
            let _ = writeln!(
                diff,
                "  {name:<14} {:>10} {:>10} {:>10} {:>10}",
                "decompose", "reduce", "factor", "cells"
            );
            let _ = writeln!(
                diff,
                "    expected     {:>10} {:>10} {:>10} {:>10}",
                want[0], want[1], want[2], want[3]
            );
            let _ = writeln!(
                diff,
                "    got          {:>10} {:>10} {:>10} {:>10}",
                got[0], got[1], got[2], got[3]
            );
        }
    }
    diff
}

#[test]
fn full_flow_literal_counts_match_golden() {
    // Pin the incremental path explicitly: unlike the other env knobs,
    // an ambient PD_FULL_REDUCE=1 (read by FlowConfig::default) changes
    // results, and these goldens are the incremental ones.
    let cfg = FlowConfig {
        full_reduce: false,
        ..FlowConfig::default()
    };
    let diff = flow_golden_diff(&FLOW_GOLDEN, &cfg);
    assert!(
        diff.is_empty(),
        "flow output drifted from the golden Table-1 numbers:\n{diff}\
         If the heuristic change is intentional, update FLOW_GOLDEN."
    );
}

#[test]
fn full_reduce_fallback_matches_legacy_golden() {
    let cfg = FlowConfig {
        full_reduce: true,
        ..FlowConfig::default()
    };
    let diff = flow_golden_diff(&FULL_REDUCE_GOLDEN, &cfg);
    assert!(
        diff.is_empty(),
        "the PD_FULL_REDUCE fallback drifted from PR 2's goldens:\n{diff}\
         If the heuristic change is intentional, update FULL_REDUCE_GOLDEN."
    );
}

#[test]
fn incremental_reduce_literals_stay_within_two_percent_of_full() {
    // The acceptance bound of the incremental Reduce on the paper's
    // headline circuits — exactly those pinned in FULL_REDUCE_GOLDEN
    // (maj15, counter12): its literal count may trail the from-scratch
    // refinement by at most 2%. (Other circuits trade differently; see
    // the ROADMAP's QoR note.)
    for (name, full) in &FULL_REDUCE_GOLDEN {
        let (_, incr) = FLOW_GOLDEN
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing from FLOW_GOLDEN"));
        let bound = (full[1] as f64) * 1.02;
        assert!(
            (incr[1] as f64) <= bound,
            "{name}: incremental reduce at {} literals exceeds 2% over the \
             from-scratch {} (bound {bound:.1})",
            incr[1],
            full[1]
        );
    }
}

#[test]
fn incremental_reduce_with_global_factor_closes_the_cell_gap() {
    // PR 3's incremental Reduce traded mapped-cell quality for stage
    // speed (lzd12 went to ~3x the from-scratch cell count). With the
    // cross-block divisor table (leader reuse + close-round CSE), the
    // arbitration close, and the workspace-wide Factor stage, the
    // incremental path must stay within 10% of the from-scratch path's
    // cells on every circuit pinned for both paths — and on lzd12/maj15
    // it currently matches or beats it. The pins themselves are held to
    // live runs by the two golden tests above.
    let mut diff = String::new();
    for (name, full) in &FULL_REDUCE_GOLDEN {
        let (_, incr) = FLOW_GOLDEN
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} missing from FLOW_GOLDEN"));
        let bound = (full[3] as f64) * 1.10;
        if (incr[3] as f64) > bound {
            use std::fmt::Write as _;
            let _ = writeln!(
                diff,
                "  {name:<14} incremental {:>4} cells vs from-scratch {:>4} \
                 (bound {bound:.1})",
                incr[3], full[3]
            );
        }
    }
    assert!(
        diff.is_empty(),
        "incremental Reduce + global Factor fell more than 10% behind the \
         from-scratch path:\n{diff}"
    );
}

#[test]
fn global_factor_beats_local_factor_on_the_headline_circuits() {
    // The acceptance criterion of the global-factoring PR: on lzd12 and
    // maj15 the workspace-wide Factor stage must map to strictly fewer
    // cells than the per-block path, with every boundary still proved by
    // the BDD oracle (flow_golden_diff already asserts green oracles).
    for name in ["lzd12", "maj15"] {
        let mut cells = [0usize; 2];
        for (i, local) in [false, true].iter().enumerate() {
            let input = circuit_by_name(name).expect("headline circuits resolve");
            let cfg = FlowConfig {
                local_factor: *local,
                full_reduce: false,
                ..FlowConfig::default()
            };
            let mut flow = Flow::new(input, cfg);
            let summary = flow
                .run_to_completion()
                .unwrap_or_else(|e| panic!("{name} local={local}: {e}"));
            for s in &summary.stages {
                assert_ne!(s.verified, Some(false), "{name}/{} oracle red", s.stage);
            }
            cells[i] = summary.cells;
        }
        assert!(
            cells[0] < cells[1],
            "{name}: global factor must beat per-block ({} vs {} cells)",
            cells[0],
            cells[1]
        );
    }
}

#[test]
fn decomposition_is_deterministic() {
    // Two runs over the same spec must produce identical hierarchies.
    let m = Majority::new(9);
    let d1 = ProgressiveDecomposer::new(PdConfig::default())
        .decompose(m.pool.clone(), m.spec());
    let d2 = ProgressiveDecomposer::new(PdConfig::default())
        .decompose(m.pool.clone(), m.spec());
    assert_eq!(d1.blocks.len(), d2.blocks.len());
    for (b1, b2) in d1.blocks.iter().zip(&d2.blocks) {
        assert_eq!(b1.group, b2.group);
        assert_eq!(b1.basis, b2.basis);
        assert_eq!(b1.substitutions, b2.substitutions);
    }
    assert_eq!(d1.outputs, d2.outputs);
}
