//! Property tests of the unified synthesis pipeline: for random ANF
//! specifications, the flow's output is BDD-equivalent to its input at
//! *every* stage boundary — in-process under the harness's environment,
//! and via `pd flow` subprocesses under both `PD_NAIVE_KERNEL` settings
//! and `PD_THREADS` ∈ {1, 4} (the env knobs are read once per process,
//! so cross-setting coverage needs child processes).

use progressive_decomposition::flow::json::Json;
use progressive_decomposition::prelude::*;
use proptest::prelude::*;

/// Renders a random term list over `n_vars` variables as a `pd` spec
/// expression (e.g. `x0*x2 ^ x1 ^ 1`). An empty mask is the constant-1
/// term; an empty list is the zero function.
fn expr_text(masks: &[u16], n_vars: usize) -> String {
    if masks.is_empty() {
        return "0".to_owned();
    }
    let terms: Vec<String> = masks
        .iter()
        .map(|&m| {
            let vars: Vec<String> = (0..n_vars)
                .filter(|&i| m >> i & 1 == 1)
                .map(|i| format!("x{i}"))
                .collect();
            if vars.is_empty() {
                "1".to_owned()
            } else {
                vars.join("*")
            }
        })
        .collect();
    terms.join(" ^ ")
}

/// Builds the flow input for a random two-output specification.
fn flow_input_for(masks_a: &[u16], masks_b: &[u16], n_vars: usize) -> (VarPool, Vec<(String, Anf)>) {
    let mut pool = VarPool::new();
    // Declare the variables in index order so specs are reproducible.
    for i in 0..n_vars {
        pool.input(&format!("x{i}"), 0, i);
    }
    let a = Anf::parse(&expr_text(masks_a, n_vars), &mut pool).expect("generated expr parses");
    let b = Anf::parse(&expr_text(masks_b, n_vars), &mut pool).expect("generated expr parses");
    (pool, vec![("ya".to_owned(), a), ("yb".to_owned(), b)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_specs_verify_at_every_stage_boundary(
        n_vars in 3usize..13,
        masks_a in proptest::collection::vec(0u16..4096, 1..24),
        masks_b in proptest::collection::vec(0u16..4096, 0..24),
    ) {
        let masks_a: Vec<u16> = masks_a.iter().map(|m| m % (1 << n_vars)).collect();
        let masks_b: Vec<u16> = masks_b.iter().map(|m| m % (1 << n_vars)).collect();
        let (pool, outputs) = flow_input_for(&masks_a, &masks_b, n_vars);
        let spec = outputs.clone();
        let mut flow = Flow::new(
            FlowInput::new("prop", pool, outputs),
            FlowConfig::default(),
        );
        let summary = flow.run_to_completion().expect("oracle green at every stage");
        prop_assert_eq!(summary.stages.len(), 5);
        for s in &summary.stages[..4] {
            prop_assert_eq!(s.verified, Some(true), "stage {} unverified", s.stage);
        }
        // Belt and braces: the final netlist also matches the spec under
        // an independent (simulation-based) check.
        let nl = flow.netlist().expect("flow completed").clone();
        prop_assert_eq!(
            progressive_decomposition::netlist::sim::check_equiv_anf(&nl, &spec, 64, 0xF10),
            None
        );
    }
}

/// Seeded random spec files driven through `pd flow` child processes
/// under all eight environment combinations: `PD_LOCAL_FACTOR` ×
/// `PD_NAIVE_KERNEL` × `PD_THREADS` ∈ {1, 4}. The flow exits non-zero if
/// any stage boundary fails the BDD oracle, and the emitted stats must be
/// bit-identical across kernels and thread counts *within* each Factor
/// path (the engine's determinism guarantee; the two Factor paths
/// legitimately produce different netlists).
#[test]
fn env_combos_agree_and_verify_via_subprocess() {
    let dir = std::env::temp_dir().join(format!("pd-flow-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut rng = TestRng::new(proptest::seed_for(
        "env_combos_agree_and_verify_via_subprocess",
    ));
    for case in 0..3u32 {
        let n_vars = 4 + rng.below(9) as usize; // 4..=12 inputs
        let n_terms = 1 + rng.below(20) as usize;
        let masks: Vec<u16> = (0..n_terms)
            .map(|_| (rng.next_u64() as u16) % (1 << n_vars))
            .collect();
        let spec_path = dir.join(format!("case{case}.pd"));
        std::fs::write(&spec_path, format!("y = {}\n", expr_text(&masks, n_vars)))
            .expect("write spec");
        // stats[local_factor] collects the per-combo fingerprints that
        // must agree with each other.
        let mut stats: [Vec<(String, String)>; 2] = [Vec::new(), Vec::new()];
        for local in [false, true] {
            for (naive, threads) in [(false, "1"), (false, "4"), (true, "1"), (true, "4")] {
                let out_path = dir.join(format!(
                    "case{case}-{}-{}-t{threads}.json",
                    if local { "local" } else { "global" },
                    if naive { "naive" } else { "fast" }
                ));
                let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_pd"));
                cmd.arg("flow")
                    .arg(&spec_path)
                    .arg("--out")
                    .arg(&out_path)
                    .env("PD_THREADS", threads)
                    .env_remove("PD_NAIVE_KERNEL")
                    .env_remove("PD_SKIP_VERIFY")
                    .env_remove("PD_FULL_REDUCE")
                    .env_remove("PD_LOCAL_FACTOR");
                if naive {
                    cmd.env("PD_NAIVE_KERNEL", "1");
                }
                if local {
                    cmd.env("PD_LOCAL_FACTOR", "1");
                }
                let out = cmd.output().expect("spawn pd flow");
                assert!(
                    out.status.success(),
                    "case {case} local={local} naive={naive} threads={threads} failed:\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
                let doc = std::fs::read_to_string(&out_path).expect("stats written");
                let parsed = Json::parse(&doc).expect("stats parse");
                let circuits = parsed.get("circuits").and_then(Json::as_arr).expect("circuits");
                // Every transforming stage's oracle verdict must be green.
                let stages = circuits[0].get("stages").and_then(Json::as_arr).expect("stages");
                for s in stages {
                    let name = s.get("stage").and_then(Json::as_str).unwrap_or("?");
                    if name != "sta" {
                        assert_eq!(
                            s.get("verified").and_then(Json::as_bool),
                            Some(true),
                            "case {case} local={local} naive={naive} threads={threads}: \
                             stage {name} not verified"
                        );
                    }
                }
                // Size metrics (not wall times) must agree across combos
                // of the same Factor path: strip the timing fields before
                // comparing.
                let fingerprint: Vec<String> = stages
                    .iter()
                    .map(|s| {
                        format!(
                            "{}:{:?}:{:?}:{:?}:{:?}",
                            s.get("stage").and_then(Json::as_str).unwrap_or("?"),
                            s.get("literals").and_then(Json::as_num),
                            s.get("gates").and_then(Json::as_num),
                            s.get("cells").and_then(Json::as_num),
                            s.get("shared_divisors").and_then(Json::as_num),
                        )
                    })
                    .collect();
                stats[usize::from(local)].push((
                    format!("local={local} naive={naive} threads={threads}"),
                    fingerprint.join("\n"),
                ));
            }
        }
        for group in &stats {
            let (ref first_combo, ref first) = group[0];
            for (combo, fp) in &group[1..] {
                assert_eq!(
                    fp, first,
                    "case {case}: {combo} disagrees with {first_combo}"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The oracle's reordering policy must never change what the flow
/// computes or concludes: under `PD_DVO` ∈ {off, on-capacity, sift} —
/// crossed with the kernel and thread-count knobs — every stage's
/// verdict and size metrics are bit-identical. Sifting only moves the
/// oracle's internal variable order; a verdict that differs would mean
/// the reordering primitive corrupted a function.
#[test]
fn dvo_modes_agree_with_fixed_order_verdicts_via_subprocess() {
    let dir = std::env::temp_dir().join(format!("pd-flow-dvo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    for circuit in ["maj7", "comparator8"] {
        let mut fingerprints: Vec<(String, String)> = Vec::new();
        for dvo in ["off", "on-capacity", "sift"] {
            for (naive, threads) in [(false, "1"), (true, "4")] {
                let out_path = dir.join(format!(
                    "{circuit}-{dvo}-{}-t{threads}.json",
                    if naive { "naive" } else { "fast" }
                ));
                let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_pd"));
                cmd.arg("flow")
                    .arg(circuit)
                    .arg("--out")
                    .arg(&out_path)
                    .env("PD_THREADS", threads)
                    .env("PD_DVO", dvo)
                    .env_remove("PD_NAIVE_KERNEL")
                    .env_remove("PD_SKIP_VERIFY")
                    .env_remove("PD_FULL_REDUCE")
                    .env_remove("PD_LOCAL_FACTOR")
                    .env_remove("PD_NODE_CAP")
                    .env_remove("PD_FAULT");
                if naive {
                    cmd.env("PD_NAIVE_KERNEL", "1");
                }
                let out = cmd.output().expect("spawn pd flow");
                assert!(
                    out.status.success(),
                    "{circuit} dvo={dvo} naive={naive} threads={threads} failed:\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
                let parsed = Json::parse(&std::fs::read_to_string(&out_path).expect("stats"))
                    .expect("stats parse");
                let circuits =
                    parsed.get("circuits").and_then(Json::as_arr).expect("circuits");
                let stages =
                    circuits[0].get("stages").and_then(Json::as_arr).expect("stages");
                // Verdicts and size metrics; peak-node/reorder counters
                // legitimately differ between policies and are excluded.
                let fingerprint: Vec<String> = stages
                    .iter()
                    .map(|s| {
                        format!(
                            "{}:{:?}:{:?}:{:?}:{:?}",
                            s.get("stage").and_then(Json::as_str).unwrap_or("?"),
                            s.get("verified").and_then(Json::as_bool),
                            s.get("literals").and_then(Json::as_num),
                            s.get("gates").and_then(Json::as_num),
                            s.get("cells").and_then(Json::as_num),
                        )
                    })
                    .collect();
                fingerprints.push((
                    format!("dvo={dvo} naive={naive} threads={threads}"),
                    fingerprint.join("\n"),
                ));
            }
        }
        let (ref first_combo, ref first) = fingerprints[0];
        for (combo, fp) in &fingerprints[1..] {
            assert_eq!(
                fp, first,
                "{circuit}: {combo} disagrees with {first_combo}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `pd flow` must also run clean on every built-in generator — the
/// CLI-level version of the acceptance criterion.
#[test]
fn pd_flow_all_generators_verify() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_pd"))
        .args(["flow", "all"])
        .env_remove("PD_SKIP_VERIFY")
        .output()
        .expect("spawn pd flow all");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("11/11 circuits clean"), "{stdout}");
}

/// Both Reduce paths stay green end to end: the same circuit through the
/// default (incremental) stage and through the `PD_FULL_REDUCE=1`
/// from-scratch fallback, oracle on, single-threaded.
#[test]
fn full_reduce_fallback_verifies_via_subprocess() {
    for full in [false, true] {
        let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_pd"));
        cmd.args(["flow", "maj7"])
            .env("PD_THREADS", "1")
            .env_remove("PD_SKIP_VERIFY")
            .env_remove("PD_FULL_REDUCE");
        if full {
            cmd.env("PD_FULL_REDUCE", "1");
        }
        let out = cmd.output().expect("spawn pd flow maj7");
        assert!(
            out.status.success(),
            "full_reduce={full} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("1/1 circuits clean"), "{stdout}");
    }
}

/// A flow spec document on stdin configures the batch.
#[test]
fn pd_flow_reads_spec_from_stdin() {
    use std::io::Write as _;
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_pd"))
        .args(["flow", "-"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn pd flow -");
    child
        .stdin
        .as_mut()
        .expect("piped")
        .write_all(br#"{"circuits": ["maj7"], "group_size": 4}"#)
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("circuit maj7"), "{stdout}");
    assert!(stdout.contains("1/1 circuits clean"), "{stdout}");
}
