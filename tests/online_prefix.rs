//! Integration coverage for the Theorem-1 construction
//! (`pd_core::online::build_prefix_states`): the parallel-prefix netlist
//! it builds must agree bit-for-bit with a serial (ripple) reference and
//! with what Progressive Decomposition produces for the same generators.

use progressive_decomposition::core::online::{build_prefix_states, OnlineStep};
use progressive_decomposition::prelude::*;

/// Serial reference: fold the conditioned pairs left to right in ANF.
/// `next = f0 ⊕ state·(f0 ⊕ f1)`, i.e. `mux(state, f0, f1)`. Returns the
/// state entering every step plus the final state (`steps.len() + 1`
/// entries), matching `build_prefix_states`' contract.
fn serial_states(steps: &[OnlineStep], initial: bool) -> Vec<Anf> {
    let mut state = if initial { Anf::one() } else { Anf::zero() };
    let mut out = vec![state.clone()];
    for s in steps {
        state = s.f0.xor(&state.and(&s.f0.xor(&s.f1)));
        out.push(state.clone());
    }
    out
}

/// Ripple-carry adder generators: state = carry, step i consumes
/// `(a_i, b_i)` with `f0 = a·b`, `f1 = a ∨ b`.
fn adder_steps(pool: &mut VarPool, width: usize) -> Vec<OnlineStep> {
    let a = pool.input_word("a", 0, width);
    let b = pool.input_word("b", 1, width);
    (0..width)
        .map(|i| {
            let ai = Anf::var(a[i]);
            let bi = Anf::var(b[i]);
            OnlineStep {
                f0: ai.and(&bi),
                f1: ai.or(&bi),
            }
        })
        .collect()
}

/// LSB-first magnitude comparator generators (A > B): `f0 = a·¬b`,
/// `f1 = a ∨ ¬b`.
fn comparator_steps(pool: &mut VarPool, width: usize) -> Vec<OnlineStep> {
    let a = pool.input_word("a", 0, width);
    let b = pool.input_word("b", 1, width);
    (0..width)
        .map(|i| {
            let ai = Anf::var(a[i]);
            let nbi = Anf::var(b[i]).not();
            OnlineStep {
                f0: ai.and(&nbi),
                f1: ai.or(&nbi),
            }
        })
        .collect()
}

/// Builds the prefix netlist for `steps` with every state exported as an
/// output named `s{i}`, plus the matching serial-reference spec.
fn prefix_netlist(steps: &[OnlineStep], initial: bool) -> (Netlist, Vec<(String, Anf)>) {
    let mut nl = Netlist::new();
    let mut synth = Synthesizer::new();
    let states = build_prefix_states(&mut nl, &mut synth, steps, initial);
    assert_eq!(states.len(), steps.len() + 1);
    for (i, &s) in states.iter().enumerate() {
        nl.set_output(&format!("s{i}"), s);
    }
    let spec: Vec<(String, Anf)> = serial_states(steps, initial)
        .into_iter()
        .enumerate()
        .map(|(i, f)| (format!("s{i}"), f))
        .collect();
    (nl, spec)
}

#[test]
fn adder_prefix_states_match_the_serial_reference() {
    let mut pool = VarPool::new();
    let steps = adder_steps(&mut pool, 7);
    let (nl, spec) = prefix_netlist(&steps, false);
    assert_eq!(pd_netlist::sim::check_equiv_anf(&nl, &spec, 64, 0xAD0), None);
}

#[test]
fn comparator_prefix_states_match_the_serial_reference() {
    let mut pool = VarPool::new();
    let steps = comparator_steps(&mut pool, 6);
    let (nl, spec) = prefix_netlist(&steps, false);
    assert_eq!(pd_netlist::sim::check_equiv_anf(&nl, &spec, 64, 0xC3A), None);
}

#[test]
fn initial_state_true_is_respected() {
    // Parity with an odd seed: f0 = x, f1 = ¬x starting from 1 computes
    // the complement of the XOR of all bits consumed so far.
    let mut pool = VarPool::new();
    let xs = pool.input_word("x", 0, 6);
    let steps: Vec<OnlineStep> = xs
        .iter()
        .map(|&x| OnlineStep {
            f0: Anf::var(x),
            f1: Anf::var(x).not(),
        })
        .collect();
    let (nl, spec) = prefix_netlist(&steps, true);
    assert_eq!(spec[0].1, Anf::one());
    assert_eq!(pd_netlist::sim::check_equiv_anf(&nl, &spec, 64, 0x1D), None);
}

#[test]
fn empty_step_list_yields_just_the_initial_state() {
    for initial in [false, true] {
        let mut nl = Netlist::new();
        let mut synth = Synthesizer::new();
        let states = build_prefix_states(&mut nl, &mut synth, &[], initial);
        assert_eq!(states.len(), 1);
        nl.set_output("s0", states[0]);
        let spec = vec![(
            "s0".to_owned(),
            if initial { Anf::one() } else { Anf::zero() },
        )];
        assert_eq!(pd_netlist::sim::check_equiv_anf(&nl, &spec, 8, 7), None);
    }
}

#[test]
fn prefix_construction_agrees_with_progressive_decomposition_exactly() {
    // The paper's §6 point: Progressive Decomposition rediscovers the
    // hierarchical structure Theorem 1 constructs. Pin the two against
    // each other with a canonical BDD check, not just simulation.
    for (name, width) in [("adder", 6usize), ("comparator", 5usize)] {
        let mut pool = VarPool::new();
        let steps = match name {
            "adder" => adder_steps(&mut pool, width),
            _ => comparator_steps(&mut pool, width),
        };
        let (prefix_nl, spec) = prefix_netlist(&steps, false);
        let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(pool.clone(), spec);
        assert_eq!(d.check_equivalence(64, 0xB0B), None, "{name}: pd vs spec");
        let pd_nl = d.to_netlist();
        let verdict =
            progressive_decomposition::bdd::verify::check_equal_interleaved(&pool, &prefix_nl, &pd_nl)
                .expect("small generators fit comfortably under the node cap");
        assert_eq!(verdict, None, "{name}: prefix netlist vs decomposed netlist");
    }
}

#[test]
fn random_generators_match_the_serial_reference_and_decomposition() {
    // Seeded property-style smoke: random conditioned pairs over two
    // fresh variables per step. A splitmix-style generator keeps the
    // sequence deterministic across platforms.
    let mut state: u64 = 0x9E3779B97F4A7C15;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u16
    };
    for round in 0..8u64 {
        let n_steps = 2 + (next() as usize % 4);
        let mut pool = VarPool::new();
        let steps: Vec<OnlineStep> = (0..n_steps)
            .map(|i| {
                let vars = pool.input_word(&format!("v{i}"), i, 2);
                // A random ANF over {x, y}: each of the four monomials
                // (1, x, y, xy) is present iff its mask bit is set.
                let random_anf = |mask: u16| {
                    let terms = (0..4)
                        .filter(|j| mask >> j & 1 == 1)
                        .map(|j| {
                            Monomial::from_vars(
                                (0..2).filter(|k| j >> k & 1 == 1).map(|k| vars[k]),
                            )
                        })
                        .collect();
                    Anf::from_terms(terms)
                };
                let (m0, m1) = (next() & 0xF, next() & 0xF);
                OnlineStep {
                    f0: random_anf(m0),
                    f1: random_anf(m1),
                }
            })
            .collect();
        let initial = next() & 1 == 1;
        let (nl, spec) = prefix_netlist(&steps, initial);
        assert_eq!(
            pd_netlist::sim::check_equiv_anf(&nl, &spec, 64, 0x5EED + round),
            None,
            "round {round}: prefix netlist vs serial reference"
        );
        let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(pool, spec);
        assert_eq!(
            d.check_equivalence(64, 0xDEC0 + round),
            None,
            "round {round}: decomposition vs serial reference"
        );
    }
}
