//! Exact (BDD-based) equivalence checking of the Table 1 circuits.
//!
//! The simulation-based checks in `table1_circuits.rs` are exhaustive
//! only up to 20 inputs; the 32-bit LOD (32 inputs), 15-bit comparator
//! (30) and 12-bit three-operand adder (36) were previously verified
//! with randomised vectors. These tests close the gap: under an
//! interleaved variable order every circuit in the paper has a small
//! BDD, so equivalence becomes *exact* at full Table 1 widths.

use progressive_decomposition::arith::{
    Adder, Comparator, Counter, Gray, Lod, Lzd, Majority, Parity, ThreeInputAdder,
};
use progressive_decomposition::bdd::verify::{check_equal_interleaved, check_netlist_vs_anf};
use progressive_decomposition::bdd::interleaved_order;
use progressive_decomposition::prelude::*;

fn pd_netlist(pool: &VarPool, spec: Vec<(String, Anf)>) -> Netlist {
    ProgressiveDecomposer::new(PdConfig::default())
        .decompose(pool.clone(), spec)
        .to_netlist()
}

#[test]
fn lzd16_pd_exactly_equals_oklobdzija_and_flat_sop() {
    let lzd = Lzd::new(16);
    let pd = pd_netlist(&lzd.pool, lzd.spec());
    assert_eq!(
        check_equal_interleaved(&lzd.pool, &pd, &lzd.oklobdzija_netlist()).unwrap(),
        None,
        "PD output differs from the manual Oklobdzija design"
    );
    assert_eq!(
        check_equal_interleaved(&lzd.pool, &pd, &lzd.sop_netlist()).unwrap(),
        None
    );
}

#[test]
fn lod32_pd_exactly_matches_spec() {
    // 32 inputs — far beyond exhaustive simulation; the LOD's RM form is
    // small enough to build the spec BDD directly.
    let lod = Lod::new(32);
    let pd = pd_netlist(&lod.pool, lod.spec());
    let order = interleaved_order(&lod.pool);
    assert_eq!(check_netlist_vs_anf(&pd, &lod.spec(), &order).unwrap(), None);
    assert_eq!(
        check_netlist_vs_anf(&lod.sop_netlist(), &lod.spec(), &order).unwrap(),
        None
    );
}

#[test]
fn adder16_baselines_pairwise_exact() {
    let a = Adder::new(16);
    let rca = a.rca_netlist();
    assert_eq!(
        check_equal_interleaved(&a.pool, &rca, &a.designware_netlist()).unwrap(),
        None
    );
    assert_eq!(
        check_equal_interleaved(&a.pool, &rca, &a.sklansky_netlist()).unwrap(),
        None
    );
}

#[test]
fn adder12_pd_exactly_equals_rca() {
    let a = Adder::new(12);
    let pd = pd_netlist(&a.pool, a.spec());
    assert_eq!(
        check_equal_interleaved(&a.pool, &pd, &a.rca_netlist()).unwrap(),
        None
    );
}

#[test]
fn comparator15_baselines_exact() {
    // 30 inputs; the two baselines must agree exactly.
    let c = Comparator::new(15);
    assert_eq!(
        check_equal_interleaved(&c.pool, &c.progressive_netlist(), &c.subtracter_netlist())
            .unwrap(),
        None
    );
}

#[test]
fn comparator10_pd_exactly_equals_baselines() {
    let c = Comparator::new(10);
    let pd = pd_netlist(&c.pool, c.spec());
    assert_eq!(
        check_equal_interleaved(&c.pool, &pd, &c.progressive_netlist()).unwrap(),
        None
    );
}

#[test]
fn three_input12_baselines_exact() {
    // 36 inputs — the widest circuit in Table 1.
    let t = ThreeInputAdder::new(12);
    assert_eq!(
        check_equal_interleaved(&t.pool, &t.rca_rca_netlist(), &t.csa_adder_netlist()).unwrap(),
        None
    );
}

#[test]
fn three_input8_pd_exactly_equals_csa() {
    let t = ThreeInputAdder::new(8);
    let pd = pd_netlist(&t.pool, t.spec());
    assert_eq!(
        check_equal_interleaved(&t.pool, &pd, &t.csa_adder_netlist()).unwrap(),
        None
    );
}

#[test]
fn counter16_baselines_exact() {
    let c = Counter::new(16);
    assert_eq!(
        check_equal_interleaved(&c.pool, &c.adder_tree_netlist(), &c.tga_netlist()).unwrap(),
        None
    );
}

#[test]
fn majority15_pd_exactly_equals_flat_sop() {
    let m = Majority::new(15);
    let pd = pd_netlist(&m.pool, m.spec());
    assert_eq!(
        check_equal_interleaved(&m.pool, &pd, &m.sop_netlist()).unwrap(),
        None
    );
}

#[test]
fn parity24_pd_exactly_equals_tree() {
    // 24 inputs: beyond exhaustive simulation, trivial for BDDs.
    let p = Parity::new(24);
    let pd = pd_netlist(&p.pool, p.spec());
    assert_eq!(
        check_equal_interleaved(&p.pool, &pd, &p.tree_netlist()).unwrap(),
        None
    );
}

#[test]
fn gray24_decoders_exact() {
    let g = Gray::new(24);
    assert_eq!(
        check_equal_interleaved(&g.pool, &g.ripple_decode_netlist(), &g.prefix_decode_netlist())
            .unwrap(),
        None
    );
    let pd = pd_netlist(&g.pool, g.decode_spec());
    assert_eq!(
        check_equal_interleaved(&g.pool, &pd, &g.prefix_decode_netlist()).unwrap(),
        None
    );
}

#[test]
fn corrupted_netlist_is_rejected_at_full_width() {
    // Fault injection at a width where simulation could plausibly miss
    // the difference: flip one gate deep in the 32-bit LOD.
    let lod = Lod::new(32);
    let good = lod.sop_netlist();
    let mut bad = good.clone();
    let (name, node) = bad.outputs().last().unwrap().clone();
    let wrong = bad.not(node);
    bad.set_output(&name, wrong);
    let m = check_equal_interleaved(&lod.pool, &good, &bad)
        .unwrap()
        .expect("corruption must be detected");
    assert_eq!(m.output, name);
}
