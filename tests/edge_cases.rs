//! Edge-case and failure-injection coverage across the full flow:
//! degenerate specifications, extreme group sizes, the mapper/STA on
//! unusual netlists, and corruption detection.

use progressive_decomposition::arith::{Gray, Lzd, Multiplier, Parity};
use progressive_decomposition::bdd::verify::check_equal_interleaved;
use progressive_decomposition::cells::{map, msim, report_mapped};
use progressive_decomposition::netlist::sim::check_equiv_anf;
use progressive_decomposition::prelude::*;

#[test]
fn constant_and_literal_specs_decompose() {
    let mut pool = VarPool::new();
    let a = pool.input("a", 0, 0);
    let spec = vec![
        ("zero".to_owned(), Anf::zero()),
        ("one".to_owned(), Anf::one()),
        ("lit".to_owned(), Anf::var(a)),
    ];
    let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(pool, spec.clone());
    assert_eq!(d.check_equivalence(16, 1), None);
    let nl = d.to_netlist();
    assert_eq!(check_equiv_anf(&nl, &spec, 16, 2), None);
    assert_eq!(nl.outputs().len(), 3);
}

#[test]
fn empty_spec_yields_empty_decomposition() {
    let pool = VarPool::new();
    let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(pool, Vec::new());
    assert!(d.blocks.is_empty());
    assert_eq!(d.check_equivalence(4, 3), None);
    assert!(d.to_netlist().outputs().is_empty());
}

#[test]
fn extreme_group_sizes_stay_correct() {
    // k = 1 degenerates to per-variable abstraction; k ≥ n swallows all
    // inputs in one group. Both must still produce correct circuits.
    for k in [1usize, 16] {
        let mut pool = VarPool::new();
        let maj7 = pd_core::examples::majority_anf(&mut pool, 7);
        let spec = vec![("maj".to_owned(), maj7)];
        let d = ProgressiveDecomposer::new(PdConfig::default().with_group_size(k))
            .decompose(pool, spec.clone());
        assert_eq!(d.check_equivalence(128, 5), None, "k = {k}");
        assert_eq!(check_equiv_anf(&d.to_netlist(), &spec, 128, 7), None, "k = {k}");
    }
}

#[test]
fn duplicate_output_expressions_share_logic() {
    let mut pool = VarPool::new();
    let x = Anf::parse("a*b ^ b*c ^ c*a", &mut pool).expect("parsable");
    let spec = vec![("u".to_owned(), x.clone()), ("v".to_owned(), x)];
    let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(pool, spec.clone());
    assert_eq!(d.check_equivalence(64, 11), None);
    let nl = d.to_netlist();
    assert_eq!(check_equiv_anf(&nl, &spec, 64, 13), None);
    // Hash-consing must collapse the two outputs onto one driver.
    let (u, v) = (nl.outputs()[0].1, nl.outputs()[1].1);
    assert_eq!(u, v);
}

#[test]
fn mapper_verified_on_xor_dominated_netlists() {
    // The mapper's XOR/XNOR absorption paths get their densest workout
    // on parity trees and prefix XOR networks.
    let p = Parity::new(16);
    for nl in [p.tree_netlist(), p.chain_netlist()] {
        let mapped = map::map(&nl);
        assert_eq!(msim::check_mapping(&nl, &mapped, 128, 17), None);
    }
    let g = Gray::new(12);
    for nl in [g.prefix_decode_netlist(), g.encode_netlist()] {
        let mapped = map::map(&nl);
        assert_eq!(msim::check_mapping(&nl, &mapped, 128, 19), None);
    }
}

#[test]
fn mapped_report_is_finite_and_positive() {
    let p = Parity::new(12);
    let nl = p.tree_netlist();
    let mapped = map::map(&nl);
    let lib = CellLibrary::umc130();
    let r = report_mapped(&mapped, &lib);
    assert!(r.area_um2 > 0.0 && r.area_um2.is_finite());
    assert!(r.delay_ns > 0.0 && r.delay_ns.is_finite());
}

#[test]
fn sta_penalises_fanout() {
    // The same XOR chain, but with the first stage fanned out to many
    // consumers, must get slower at the fanned-out net: this load term
    // is what makes the paper's flat SOP architectures slow.
    let lib = CellLibrary::umc130();
    let build = |extra_loads: usize| {
        let mut pool = VarPool::new();
        let a = pool.input("a", 0, 0);
        let b = pool.input("b", 0, 1);
        let mut nl = Netlist::new();
        let (na, nb) = (nl.input(a), nl.input(b));
        let x = nl.xor(na, nb);
        for i in 0..extra_loads {
            let extra = pool.input(&format!("c{i}"), 1, i);
            let ne = nl.input(extra);
            let load = nl.and(x, ne);
            nl.set_output(&format!("l{i}"), load);
        }
        let y = nl.not(x);
        nl.set_output("y", y);
        progressive_decomposition::cells::report(&nl, &lib).delay_ns
    };
    let lightly_loaded = build(1);
    let heavily_loaded = build(12);
    assert!(
        heavily_loaded > lightly_loaded,
        "fan-out 13 ({heavily_loaded} ns) must be slower than fan-out 2 ({lightly_loaded} ns)"
    );
}

#[test]
fn sweep_preserves_decomposition_outputs() {
    let lzd = Lzd::new(8);
    let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(lzd.pool.clone(), lzd.spec());
    let nl = d.to_netlist();
    let swept = nl.sweep();
    assert!(swept.len() <= nl.len());
    assert_eq!(check_equiv_anf(&swept, &lzd.spec(), 64, 23), None);
}

#[test]
fn single_gate_corruption_is_detected_exactly() {
    // Every single-output flip on the Oklobdzija LZD must be caught by
    // the BDD equivalence check (no silent acceptance).
    let lzd = Lzd::new(16);
    let good = lzd.oklobdzija_netlist();
    for i in 0..good.outputs().len() {
        let mut bad = good.clone();
        let (name, node) = bad.outputs()[i].clone();
        let flipped = bad.not(node);
        bad.set_output(&name, flipped);
        let m = check_equal_interleaved(&lzd.pool, &good, &bad)
            .expect("small BDDs")
            .expect("flip must be detected");
        assert_eq!(m.output, name);
    }
}

#[test]
fn multiplier4_decomposes_without_blowup() {
    // Regression: §5.4 size-reduction rewrite chains used to *square*
    // the null-space generator sets at every step, exhausting memory on
    // a 138-term multiplier spec. The generator cap in
    // `pd_anf::nullspace` keeps the representation bounded.
    let m = Multiplier::new(4);
    let spec = m.spec();
    let d =
        ProgressiveDecomposer::new(PdConfig::default()).decompose(m.pool.clone(), spec.clone());
    assert_eq!(d.check_equivalence(128, 41), None);
    assert_eq!(check_equiv_anf(&d.to_netlist(), &spec, 128, 43), None);
}

#[test]
fn decomposer_handles_spec_with_shared_subexpressions_across_outputs() {
    // Multi-output spec where outputs overlap heavily: the counter bits
    // of a 6-input adder tree share all their carries.
    let mut pool = VarPool::new();
    let bits = pool.input_word("a", 0, 6);
    let sum: Anf = bits.iter().fold(Anf::zero(), |acc, &b| acc.xor(&Anf::var(b)));
    let pairs: Vec<Anf> = bits
        .chunks(2)
        .map(|c| Anf::var(c[0]).and(&Anf::var(c[1])))
        .collect();
    let carry = Anf::xor_all(&pairs);
    let spec = vec![("s".to_owned(), sum), ("c".to_owned(), carry)];
    let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(pool, spec.clone());
    assert_eq!(d.check_equivalence(64, 29), None);
    assert_eq!(check_equiv_anf(&d.to_netlist(), &spec, 64, 31), None);
}
