//! End-to-end tests of the `pd` command-line tool: the ANF front-end,
//! the Verilog round-trip, and the option surface.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn pd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pd"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (bool, String, String) {
    let mut child = pd()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn pd");
    child
        .stdin
        .as_mut()
        .expect("piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const FULL_ADDER: &str = "\
# full adder
sum   = a ^ b ^ cin
carry = a*b ^ b*cin ^ cin*a
";

#[test]
fn decomposes_spec_from_stdin() {
    let (ok, stdout, stderr) = run_with_stdin(&["-"], FULL_ADDER);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("verification: OK"));
    assert!(stdout.contains("PD implementation"));
}

#[test]
fn exact_factor_and_zdd_reports() {
    let (ok, stdout, stderr) =
        run_with_stdin(&["--exact", "--factor", "--zdd", "-"], FULL_ADDER);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("exact (BDD)"));
    assert!(stdout.contains("kernel extraction"));
    assert!(stdout.contains("ZDD (ring) form"));
}

#[test]
fn verilog_round_trip_through_the_cli() {
    // Emit Verilog from a spec, feed the Verilog back in as input.
    let dir = std::env::temp_dir().join(format!("pd-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let vfile = dir.join("fa.v");
    let (ok, _, stderr) = run_with_stdin(
        &["--verilog", vfile.to_str().expect("utf-8"), "-"],
        FULL_ADDER,
    );
    assert!(ok, "stderr: {stderr}");
    let out = pd()
        .arg("--exact")
        .arg(&vfile)
        .output()
        .expect("run pd on verilog");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verification: OK"));
    assert!(stdout.contains("netlist ≡ specification"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_spec_reports_line_and_fails() {
    let (ok, _, stderr) = run_with_stdin(&["-"], "sum = a ^ ^ b\n");
    assert!(!ok);
    assert!(stderr.contains("line 1"), "stderr: {stderr}");
}

#[test]
fn trace_shows_leaders() {
    let (ok, stdout, _) = run_with_stdin(&["--trace", "-"], FULL_ADDER);
    assert!(ok);
    assert!(stdout.contains("leader"), "trace must list leaders: {stdout}");
}

#[test]
fn group_size_flag_is_respected() {
    let (ok, stdout, _) = run_with_stdin(&["-k", "2", "-"], FULL_ADDER);
    assert!(ok);
    assert!(stdout.contains("verification: OK"));
    let (ok, _, stderr) = run_with_stdin(&["-k", "0", "-"], FULL_ADDER);
    assert!(!ok);
    assert!(stderr.contains("positive"), "stderr: {stderr}");
}
