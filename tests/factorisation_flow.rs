//! Integration of the algebraic-factorisation baseline with the rest of
//! the toolchain: kernel extraction on the real benchmark SOPs, node
//! minimisation, and BDD-exact verdicts.

use progressive_decomposition::arith::{Gray, Lod, Lzd};
use progressive_decomposition::bdd::verify::check_equal_interleaved;
use progressive_decomposition::factor::{ExtractConfig, FactorNetwork};
use progressive_decomposition::netlist::{Netlist, Sop};
use progressive_decomposition::prelude::*;

fn sop_netlist(sops: &[(String, Sop)]) -> Netlist {
    let mut nl = Netlist::new();
    for (name, sop) in sops {
        let node = sop.synthesize(&mut nl);
        nl.set_output(name, node);
    }
    nl
}

#[test]
fn lzd16_extraction_is_exactly_equivalent_and_smaller() {
    let lzd = Lzd::new(16);
    let sops = lzd.sop();
    let flat = sop_netlist(&sops);
    let mut pool = lzd.pool.clone();
    let mut net = FactorNetwork::from_sops(&sops);
    let stats = net.extract(&mut pool, &ExtractConfig::default());
    assert!(
        stats.literals_after < stats.literals_before / 2,
        "extraction must at least halve the LZD SOP: {stats:?}"
    );
    let factored = net.synthesize();
    assert_eq!(
        check_equal_interleaved(&lzd.pool, &flat, &factored).expect("small BDDs"),
        None
    );
}

#[test]
fn node_minimisation_composes_with_extraction_on_lod16() {
    let lod = Lod::new(16);
    let sops = lod.sop();
    let flat = sop_netlist(&sops);
    let mut pool = lod.pool.clone();
    let mut net = FactorNetwork::from_sops(&sops);
    net.extract(&mut pool, &ExtractConfig::default());
    net.minimize_nodes(12);
    let synthesized = net.synthesize();
    assert_eq!(
        check_equal_interleaved(&lod.pool, &flat, &synthesized).expect("small BDDs"),
        None
    );
}

#[test]
fn gray10_extraction_matches_the_prefix_decoder_exactly() {
    // Three independently built implementations of the same decoder:
    // minterm SOP put through kernel extraction, the ripple chain, and
    // the parallel-prefix network — all BDD-identical.
    let g = Gray::new(10);
    let mut pool = g.pool.clone();
    let factored = progressive_decomposition::factor::factor_and_synthesize(
        &g.decode_sop(),
        &mut pool,
        &ExtractConfig::default(),
    );
    assert_eq!(
        check_equal_interleaved(&g.pool, &factored, &g.prefix_decode_netlist())
            .expect("small BDDs"),
        None
    );
    assert_eq!(
        check_equal_interleaved(&g.pool, &factored, &g.ripple_decode_netlist())
            .expect("small BDDs"),
        None
    );
}

#[test]
fn extraction_through_verilog_round_trip() {
    // Factored netlist → Verilog → importer → still equivalent.
    let lzd = Lzd::new(8);
    let sops = lzd.sop();
    let mut pool = lzd.pool.clone();
    let factored = progressive_decomposition::factor::factor_and_synthesize(
        &sops,
        &mut pool,
        &ExtractConfig::default(),
    );
    let text = progressive_decomposition::netlist::export::to_verilog(&factored, &pool, "lzd8");
    let mut pool2 = pool.clone();
    let back =
        progressive_decomposition::netlist::from_verilog(&text, &mut pool2).expect("round-trip");
    assert_eq!(
        check_equal_interleaved(&lzd.pool, &factored, &back).expect("small BDDs"),
        None
    );
}

#[test]
fn pd_beats_extraction_on_parity_area() {
    // The headline §2 measurement as a pinned regression: PD's parity
    // implementation must stay well below the factored network's area.
    use progressive_decomposition::arith::Parity;
    let p = Parity::new(10);
    let lib = CellLibrary::umc130();
    let mut pool = p.pool.clone();
    let factored = progressive_decomposition::factor::factor_and_synthesize(
        &[("p".to_owned(), p.sop())],
        &mut pool,
        &ExtractConfig::default(),
    );
    let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(p.pool.clone(), p.spec());
    let fx = report(&factored, &lib);
    let pd = report(&d.to_netlist(), &lib);
    assert!(
        pd.area_um2 * 2.0 < fx.area_um2,
        "PD ({:.1} µm²) must be at most half of kernel extraction ({:.1} µm²)",
        pd.area_um2,
        fx.area_um2
    );
}
