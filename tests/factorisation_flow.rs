//! Integration of the algebraic-factorisation baseline with the rest of
//! the toolchain: kernel extraction on the real benchmark SOPs, node
//! minimisation, and BDD-exact verdicts.

use progressive_decomposition::arith::{Gray, Lod, Lzd};
use progressive_decomposition::bdd::verify::check_equal_interleaved;
use progressive_decomposition::factor::{
    ExtractConfig, FactorNetwork, GlobalConfig, GlobalNetwork,
};
use progressive_decomposition::netlist::{Netlist, Sop};
use progressive_decomposition::prelude::*;
use proptest::prelude::*;

fn sop_netlist(sops: &[(String, Sop)]) -> Netlist {
    let mut nl = Netlist::new();
    for (name, sop) in sops {
        let node = sop.synthesize(&mut nl);
        nl.set_output(name, node);
    }
    nl
}

#[test]
fn lzd16_extraction_is_exactly_equivalent_and_smaller() {
    let lzd = Lzd::new(16);
    let sops = lzd.sop();
    let flat = sop_netlist(&sops);
    let mut pool = lzd.pool.clone();
    let mut net = FactorNetwork::from_sops(&sops);
    let stats = net.extract(&mut pool, &ExtractConfig::default());
    assert!(
        stats.literals_after < stats.literals_before / 2,
        "extraction must at least halve the LZD SOP: {stats:?}"
    );
    let factored = net.synthesize();
    assert_eq!(
        check_equal_interleaved(&lzd.pool, &flat, &factored).expect("small BDDs"),
        None
    );
}

#[test]
fn node_minimisation_composes_with_extraction_on_lod16() {
    let lod = Lod::new(16);
    let sops = lod.sop();
    let flat = sop_netlist(&sops);
    let mut pool = lod.pool.clone();
    let mut net = FactorNetwork::from_sops(&sops);
    net.extract(&mut pool, &ExtractConfig::default());
    net.minimize_nodes(12);
    let synthesized = net.synthesize();
    assert_eq!(
        check_equal_interleaved(&lod.pool, &flat, &synthesized).expect("small BDDs"),
        None
    );
}

#[test]
fn gray10_extraction_matches_the_prefix_decoder_exactly() {
    // Three independently built implementations of the same decoder:
    // minterm SOP put through kernel extraction, the ripple chain, and
    // the parallel-prefix network — all BDD-identical.
    let g = Gray::new(10);
    let mut pool = g.pool.clone();
    let factored = progressive_decomposition::factor::factor_and_synthesize(
        &g.decode_sop(),
        &mut pool,
        &ExtractConfig::default(),
    );
    assert_eq!(
        check_equal_interleaved(&g.pool, &factored, &g.prefix_decode_netlist())
            .expect("small BDDs"),
        None
    );
    assert_eq!(
        check_equal_interleaved(&g.pool, &factored, &g.ripple_decode_netlist())
            .expect("small BDDs"),
        None
    );
}

#[test]
fn extraction_through_verilog_round_trip() {
    // Factored netlist → Verilog → importer → still equivalent.
    let lzd = Lzd::new(8);
    let sops = lzd.sop();
    let mut pool = lzd.pool.clone();
    let factored = progressive_decomposition::factor::factor_and_synthesize(
        &sops,
        &mut pool,
        &ExtractConfig::default(),
    );
    let text = progressive_decomposition::netlist::export::to_verilog(&factored, &pool, "lzd8");
    let mut pool2 = pool.clone();
    let back =
        progressive_decomposition::netlist::from_verilog(&text, &mut pool2).expect("round-trip");
    assert_eq!(
        check_equal_interleaved(&lzd.pool, &factored, &back).expect("small BDDs"),
        None
    );
}

/// Builds a random multi-output ANF specification from term masks.
fn random_spec(pool: &mut VarPool, n_vars: usize, outputs: &[Vec<u16>]) -> Vec<(String, Anf)> {
    let vars: Vec<Var> = (0..n_vars)
        .map(|i| pool.input(&format!("x{i}"), 0, i))
        .collect();
    outputs
        .iter()
        .enumerate()
        .map(|(oi, masks)| {
            let terms: Vec<pd_anf::Monomial> = masks
                .iter()
                .map(|&m| {
                    pd_anf::Monomial::from_vars(
                        (0..n_vars).filter(|&i| m >> i & 1 == 1).map(|i| vars[i]),
                    )
                })
                .collect();
            (format!("y{oi}"), Anf::from_terms(terms))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// The workspace-wide network on random multi-output ANFs (≤ 12
    /// inputs): extraction must be an exact algebraic identity, the
    /// synthesised netlist must BDD-verify against the specification,
    /// and factoring all outputs *together* must never end up with more
    /// literals than factoring each output in isolation (the per-block
    /// path's view of the same functions).
    #[test]
    fn global_network_verifies_and_never_loses_to_per_block(
        n_vars in 3usize..13,
        masks_a in proptest::collection::vec(0u16..4096, 1..20),
        masks_b in proptest::collection::vec(0u16..4096, 1..20),
        masks_c in proptest::collection::vec(0u16..4096, 0..20),
    ) {
        let trim = |masks: &[u16]| -> Vec<u16> {
            masks.iter().map(|m| m % (1 << n_vars)).collect()
        };
        let outputs = vec![trim(&masks_a), trim(&masks_b), trim(&masks_c)];
        let mut pool = VarPool::new();
        let spec = random_spec(&mut pool, n_vars, &outputs);
        let cfg = GlobalConfig::default();

        let mut global = GlobalNetwork::new();
        for (name, e) in &spec {
            global.add_output(name, e);
        }
        let stats = global.extract(&mut pool, &cfg);
        // Exact algebraic identity: substituting every divisor back
        // reproduces the ingested expressions term for term.
        prop_assert_eq!(global.expanded(), global.originals());
        // Extraction is monotone in the classical literal cost.
        prop_assert!(stats.literals_after <= stats.literals_before, "{stats:?}");

        // Never worse than the per-block view at the netlist level: one
        // isolated network (own synthesiser, no sharing possible) per
        // output. Primary-input nodes are excluded from both counts so
        // the per-block side is not inflated by re-declared inputs.
        let logic_gates = |nl: &Netlist| {
            let live = nl.live_mask();
            nl.iter()
                .filter(|(id, g)| {
                    live[id.index()]
                        && !matches!(g, progressive_decomposition::netlist::Gate::Input(_))
                })
                .count()
        };
        let mut per_block_gates = 0usize;
        for (name, e) in &spec {
            let mut lone = GlobalNetwork::new();
            lone.add_output(name, e);
            lone.extract(&mut pool, &cfg);
            per_block_gates += logic_gates(&lone.synthesize());
        }
        // Both sides are greedy, so commit-order interaction can cost a
        // gate on adversarial random specs; anything beyond that noise
        // floor (one gate + 5%) is a real regression. The strict wins on
        // the paper's circuits are pinned in table1_circuits.rs.
        let nl = global.synthesize();
        let bound = per_block_gates + 1 + per_block_gates / 20;
        prop_assert!(
            logic_gates(&nl) <= bound,
            "global {} gates vs per-block {} (bound {})",
            logic_gates(&nl),
            per_block_gates,
            bound
        );
        let order = interleaved_order(&pool);
        let verdict = progressive_decomposition::bdd::verify::check_netlist_vs_anf(
            &nl, &spec, &order,
        );
        prop_assert_eq!(verdict.expect("small BDDs"), None);
    }
}

#[test]
fn pd_beats_extraction_on_parity_area() {
    // The headline §2 measurement as a pinned regression: PD's parity
    // implementation must stay well below the factored network's area.
    use progressive_decomposition::arith::Parity;
    let p = Parity::new(10);
    let lib = CellLibrary::umc130();
    let mut pool = p.pool.clone();
    let factored = progressive_decomposition::factor::factor_and_synthesize(
        &[("p".to_owned(), p.sop())],
        &mut pool,
        &ExtractConfig::default(),
    );
    let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(p.pool.clone(), p.spec());
    let fx = report(&factored, &lib);
    let pd = report(&d.to_netlist(), &lib);
    assert!(
        pd.area_um2 * 2.0 < fx.area_um2,
        "PD ({:.1} µm²) must be at most half of kernel extraction ({:.1} µm²)",
        pd.area_um2,
        fx.area_um2
    );
}
