//! Property tests: Progressive Decomposition preserves function on
//! arbitrary specifications, under every configuration.

use progressive_decomposition::prelude::*;
use proptest::prelude::*;

const N_VARS: usize = 8;

/// Random multi-output spec over `N_VARS` inputs split into two words.
fn spec_strategy() -> impl Strategy<Value = (VarPool, Vec<(String, Anf)>)> {
    let term = proptest::collection::vec(0u16..(1u16 << N_VARS), 1..10);
    proptest::collection::vec(term, 1..4).prop_map(|outputs| {
        let mut pool = VarPool::new();
        let a = pool.input_word("a", 0, N_VARS / 2);
        let b = pool.input_word("b", 1, N_VARS / 2);
        let all: Vec<Var> = a.into_iter().chain(b).collect();
        let outputs = outputs
            .into_iter()
            .enumerate()
            .map(|(i, masks)| {
                let terms = masks
                    .into_iter()
                    .map(|m| {
                        Monomial::from_vars(
                            (0..N_VARS).filter(|j| m >> j & 1 == 1).map(|j| all[j]),
                        )
                    })
                    .collect();
                (format!("y{i}"), Anf::from_terms(terms))
            })
            .collect();
        (pool, outputs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn decomposition_preserves_function((pool, spec) in spec_strategy()) {
        let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(pool, spec);
        prop_assert_eq!(d.check_equivalence(64, 1), None);
    }

    #[test]
    fn emitted_netlist_preserves_function((pool, spec) in spec_strategy()) {
        let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(pool, spec.clone());
        let nl = d.to_netlist();
        prop_assert_eq!(
            progressive_decomposition::netlist::sim::check_equiv_anf(&nl, &spec, 64, 2),
            None
        );
    }

    #[test]
    fn bare_configuration_preserves_function((pool, spec) in spec_strategy()) {
        let d = ProgressiveDecomposer::new(PdConfig::default().bare()).decompose(pool, spec);
        prop_assert_eq!(d.check_equivalence(64, 3), None);
    }

    #[test]
    fn all_group_sizes_preserve_function(
        (pool, spec) in spec_strategy(),
        k in 2usize..6,
    ) {
        let cfg = PdConfig::default().with_group_size(k);
        let d = ProgressiveDecomposer::new(cfg).decompose(pool, spec);
        prop_assert_eq!(d.check_equivalence(64, 4), None);
    }

    #[test]
    fn decomposition_validates((pool, spec) in spec_strategy()) {
        let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(pool, spec);
        prop_assert_eq!(d.validate(), Ok(()));
        // Levels are well-formed: positive, and blocks only reference
        // earlier leaders (validate checked that); leader count is
        // consistent with blocks.
        let levels = d.block_levels();
        prop_assert_eq!(levels.len(), d.blocks.len());
        prop_assert!(levels.iter().all(|&l| l >= 1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn technology_mapping_preserves_function((pool, spec) in spec_strategy()) {
        let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(pool, spec);
        let nl = d.to_netlist().sweep();
        let mapped = progressive_decomposition::cells::map::map(&nl);
        prop_assert_eq!(
            progressive_decomposition::cells::msim::check_mapping(&nl, &mapped, 8, 0xFEED),
            None
        );
    }

    #[test]
    fn synthesis_flow_is_consistent((pool, spec) in spec_strategy()) {
        // PD netlist and flat netlist must agree with each other
        // (both verified against the same spec independently).
        let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(pool, spec.clone());
        let pd_nl = d.to_netlist();
        let flat = synthesize_outputs(&spec);
        let e1 = progressive_decomposition::netlist::extract::equiv_by_extraction(
            &pd_nl, &flat, 1 << 14
        );
        // Extraction may exceed the cap (undecided) but must never say
        // "different".
        prop_assert_ne!(e1, Some(false));
    }

    #[test]
    fn pd_and_kernel_extraction_agree_exactly((pool, spec) in spec_strategy()) {
        // Cross-paradigm: restructure the same functions with Progressive
        // Decomposition (ring form) and with algebraic kernel extraction
        // (minterm SOP form), then prove the two netlists identical with
        // BDDs. Three independent pipelines, one canonical verdict.
        use progressive_decomposition::netlist::{Cube, Sop};
        let inputs: Vec<Var> = pool.iter().collect();
        let sops: Vec<(String, Sop)> = spec
            .iter()
            .map(|(name, expr)| {
                let tt = TruthTable::from_anf(expr, &inputs);
                let cubes = (0..tt.len())
                    .filter(|&i| tt.get(i))
                    .map(|i| Cube(
                        inputs
                            .iter()
                            .enumerate()
                            .map(|(j, &v)| (v, i >> j & 1 == 1))
                            .collect(),
                    ))
                    .collect();
                (name.clone(), Sop(cubes))
            })
            .collect();
        let mut fx_pool = pool.clone();
        let fx_nl = progressive_decomposition::factor::factor_and_synthesize(
            &sops,
            &mut fx_pool,
            &ExtractConfig::default(),
        );
        let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(pool.clone(), spec);
        let pd_nl = d.to_netlist();
        let verdict = progressive_decomposition::bdd::verify::check_equal_interleaved(
            &pool, &fx_nl, &pd_nl,
        ).expect("8-input BDDs are tiny");
        prop_assert_eq!(verdict, None);
    }
}
