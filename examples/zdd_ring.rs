//! The paper's §7 future work, demonstrated: a canonical Boolean-ring
//! representation (ZDD-backed ANF) that does not blow up with the
//! explicit Reed–Muller term count.
//!
//! Two demonstrations:
//! 1. the §4 null-space factorisation identity, checked by canonical
//!    handle equality inside the ZDD;
//! 2. the 32-bit LZD — which §6 reports as intractable in explicit
//!    Reed–Muller form — built entirely with ring operations in the DAG.
//!
//! Run with: `cargo run --release --example zdd_ring`

use progressive_decomposition::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The §4 example: X = (a⊕b)(p⊕cd) ⊕ (c⊕d)(p⊕ab) -------------
    let mut pool = VarPool::new();
    let x = Anf::parse("(a^b)*(p^c*d) ^ (c^d)*(p^a*b)", &mut pool)?;
    let factored = Anf::parse("(a^b^c^d)*(p^a*b^c*d)", &mut pool)?;
    let mut zdd = Zdd::new();
    let zx = zdd.from_anf(&x);
    let zf = zdd.from_anf(&factored);
    assert_eq!(zx, zf, "canonical handles agree iff the functions agree");
    println!(
        "§4 identity: X = (a⊕b⊕c⊕d)(p⊕ab⊕cd) confirmed by handle equality ({} DAG nodes)",
        zdd.node_count(zx)
    );

    // --- 2. LZD-32 entirely inside the ring DAG -----------------------
    let mut pool = VarPool::new();
    let bits = pool.input_word("a", 0, 32);
    let mut zdd = Zdd::new();
    // xᵢ = aₙ₋₁₋ᵢ · ∏_{j<i} (1 ⊕ aₙ₋₁₋ⱼ): "leading one at position i".
    let mut prefix = progressive_decomposition::bdd::ZddRef::ONE;
    let mut xs = Vec::new();
    for i in 0..32 {
        let bit = zdd.var(bits[31 - i]);
        xs.push(zdd.mul(prefix, bit));
        let nb = zdd.not(bit);
        prefix = zdd.mul(prefix, nb);
    }
    // z_b = ⊕ of the xᵢ whose position has bit b set (disjoint ⇒ OR=XOR).
    let zs: Vec<_> = (0..5)
        .map(|b| {
            let mut acc = progressive_decomposition::bdd::ZddRef::ZERO;
            for (i, &xi) in xs.iter().enumerate() {
                if i >> b & 1 == 1 {
                    acc = zdd.xor(acc, xi);
                }
            }
            acc
        })
        .collect();
    let terms: u128 = zs.iter().map(|&z| zdd.term_count(z)).sum();
    println!(
        "LZD-32: {} explicit Reed–Muller monomials across 5 outputs — {} ZDD nodes",
        terms,
        zdd.node_count_many(&zs)
    );
    println!("(§6 could not run the 32-bit LZD; the ring DAG holds it in ~100 kB)");
    Ok(())
}
