//! Fig. 6 live: Progressive Decomposition finds the parallel counters
//! hidden inside the majority function.
//!
//! Run with: `cargo run --release --example majority_counters`

use progressive_decomposition::arith::Majority;
use progressive_decomposition::prelude::*;

fn main() {
    let m = Majority::new(7);
    let spec = m.spec();
    println!(
        "majority-7 in Reed–Muller form: {} terms (all 4-subsets of 7 inputs)\n",
        spec[0].1.term_count()
    );

    let d = ProgressiveDecomposer::new(PdConfig::default())
        .decompose(m.pool.clone(), spec.clone());
    assert!(d.check_equivalence(512, 7).is_none());

    // Walk the trace like the paper's Fig. 6.
    for ev in &d.trace {
        match ev {
            TraceEvent::IterationStart { iteration, group, .. } => {
                let names: Vec<&str> = group.iter().map(|&v| d.pool.name(v)).collect();
                println!("iteration {iteration}: group {{{}}}", names.join(", "));
            }
            TraceEvent::IdentityFound(e) => {
                println!("  identity    {} = 0", e.display(&d.pool));
            }
            TraceEvent::Substitution(v, e) => {
                println!(
                    "  substitution {} := {}   (basis shrinks — hidden counter found)",
                    d.pool.name(*v),
                    e.display(&d.pool)
                );
            }
            TraceEvent::BasisFinal(basis, _) => {
                for (v, e) in basis {
                    println!("  leader      {} = {}", d.pool.name(*v), e.display(&d.pool));
                }
            }
            _ => {}
        }
    }

    let lib = CellLibrary::umc130();
    println!("\nPD:   {}", report(&d.to_netlist(), &lib));
    println!("flat: {}", report(&m.sop_netlist(), &lib));
}
