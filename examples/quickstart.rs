//! Quickstart: decompose a hand-written expression and inspect the
//! resulting hierarchy.
//!
//! Run with: `cargo run --example quickstart`

use progressive_decomposition::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's §4 example expression:
    //   X = (a⊕b)(p⊕cd) ⊕ (c⊕d)(p⊕ab)
    // Algebraic factorisation cannot touch it; the Boolean ring can.
    let mut pool = VarPool::new();
    let x = Anf::parse("(a^b)*(p^c*d) ^ (c^d)*(p^a*b)", &mut pool)?;
    println!("input (canonical Reed–Muller): {}", x.display(&pool));
    println!("  {} terms, {} literals\n", x.term_count(), x.literal_count());

    // Decompose with the paper's configuration (k = 4).
    let d = ProgressiveDecomposer::new(PdConfig::default())
        .decompose(pool, vec![("x".into(), x)]);

    // Machine-check the hierarchy against the specification.
    assert!(d.check_equivalence(256, 42).is_none(), "must be equivalent");

    println!("hierarchy:\n{}", d.hierarchy_report());

    // Emit gates and run the synthesis flow (tech map + timing).
    let netlist = d.to_netlist();
    let lib = CellLibrary::umc130();
    let report = report(&netlist, &lib);
    println!("synthesis: {report}");

    // Compare against synthesising the flat expression directly.
    let flat = synthesize_outputs(&d.spec);
    let flat_report = progressive_decomposition::cells::report(&flat, &lib);
    println!("flat     : {flat_report}");
    Ok(())
}
