//! The paper's flagship Boolean-division case: `A + B + C`.
//!
//! Design-Compiler-style local synthesis cannot restructure a three-input
//! adder (its algebraic kernels are useless), but Progressive
//! Decomposition rediscovers the carry-save architecture from the flat
//! Reed–Muller specification alone.
//!
//! Run with: `cargo run --release --example three_operand_adder`

use progressive_decomposition::arith::ThreeInputAdder;
use progressive_decomposition::prelude::*;

fn main() {
    let width = 8;
    let t = ThreeInputAdder::new(width);
    let spec = t.spec();
    let lib = CellLibrary::umc130();

    let d = ProgressiveDecomposer::new(PdConfig::default())
        .decompose(t.pool.clone(), spec.clone());
    assert!(d.check_equivalence(512, 3).is_none());

    // The first blocks should be 3:2 counters on {a_i, b_i, c_i}.
    println!("first-level blocks discovered by PD:");
    for b in d.blocks.iter().take(width.min(4)) {
        let group: Vec<&str> = b.group.iter().map(|&v| d.pool.name(v)).collect();
        let leaders: Vec<String> = b
            .basis
            .iter()
            .map(|(v, e)| format!("{} = {}", d.pool.name(*v), e.display(&d.pool)))
            .collect();
        println!("  {{{}}} -> {}", group.join(", "), leaders.join(";  "));
    }

    println!("\n{width}-bit three-input adder");
    println!("  flat A+B+C        : {}", report(&synthesize_outputs(&spec), &lib));
    println!("  RCA(RCA(A,B),C)   : {}", report(&t.rca_rca_netlist(), &lib));
    println!("  PD                : {}", report(&d.to_netlist(), &lib));
    println!("  CSA + adder       : {}", report(&t.csa_adder_netlist(), &lib));
}
