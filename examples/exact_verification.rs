//! Exact verification with BDDs: decompose the 32-bit LOD — whose 32
//! inputs put it far beyond exhaustive simulation — and prove the
//! emitted netlist equivalent to its specification, then demonstrate
//! that an injected fault is caught with a concrete counterexample.
//!
//! Run with: `cargo run --release --example exact_verification`

use progressive_decomposition::arith::Lod;
use progressive_decomposition::bdd::verify::{check_equal_interleaved, check_netlist_vs_anf};
use progressive_decomposition::prelude::*;

fn main() {
    let lod = Lod::new(32);
    let spec = lod.spec();
    println!(
        "32-bit LOD: {} outputs over 32 inputs (2^32 assignments — not simulatable)",
        spec.len()
    );

    let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(lod.pool.clone(), spec.clone());
    let netlist = d.to_netlist();
    println!(
        "decomposed: {} iterations, {} blocks",
        d.iterations,
        d.blocks.len()
    );

    // Exact check: netlist vs Reed–Muller spec, via canonical BDDs under
    // an interleaved variable order.
    let order = interleaved_order(&lod.pool);
    match check_netlist_vs_anf(&netlist, &spec, &order).expect("LOD BDDs are small") {
        None => println!("exact verification: PD netlist ≡ specification ✓"),
        Some(m) => panic!("unexpected mismatch on {}", m.output),
    }

    // Fault injection: flip one output and watch the checker produce a
    // witness assignment.
    let mut faulty = netlist.clone();
    let (name, node) = faulty.outputs()[2].clone();
    let flipped = faulty.not(node);
    faulty.set_output(&name, flipped);
    let mismatch = check_equal_interleaved(&lod.pool, &netlist, &faulty)
        .expect("BDDs are small")
        .expect("the fault must be detected");
    let ones: Vec<String> = mismatch
        .assignment
        .iter()
        .filter(|&&(_, b)| b)
        .map(|&(v, _)| lod.pool.name(v).to_owned())
        .collect();
    let witness = if ones.is_empty() {
        "all inputs low".to_owned()
    } else {
        format!("{{{}}} high", ones.join(", "))
    };
    println!(
        "fault injection  : output {:?} differs, e.g. with {witness}",
        mismatch.output
    );
}
