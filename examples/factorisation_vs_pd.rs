//! The paper's §2 argument on one circuit: hand the same 10-bit parity
//! function to (a) direct SOP synthesis, (b) classical kernel extraction
//! (`pd-factor`), and (c) Progressive Decomposition, and compare.
//!
//! Run with: `cargo run --release --example factorisation_vs_pd`

use progressive_decomposition::arith::Parity;
use progressive_decomposition::prelude::*;

fn main() {
    let p = Parity::new(10);
    let spec = p.spec();
    let lib = CellLibrary::umc130();

    println!(
        "parity-10: Reed–Muller form has {} literals; minterm SOP has {} cubes\n",
        spec[0].1.literal_count(),
        p.sop_cube_count()
    );

    // (a) The flat two-level description, synthesised as written.
    let flat = p.sop_netlist();
    println!("flat SOP          : {}", report(&flat, &lib));

    // (b) Kernel extraction: the classical multi-level flow.
    let mut fx_pool = p.pool.clone();
    let mut network = FactorNetwork::from_sops(&[("p".to_owned(), p.sop())]);
    let before = network.literal_count();
    let stats = network.extract(&mut fx_pool, &ExtractConfig::default());
    let factored = network.synthesize();
    println!(
        "kernel extraction : {}   ({} → {} SOP literals, {} divisors)",
        report(&factored, &lib),
        before,
        stats.literals_after,
        stats.rounds
    );

    // (c) Progressive Decomposition on the ring form.
    let d = ProgressiveDecomposer::new(PdConfig::default()).decompose(p.pool.clone(), spec.clone());
    let pd = d.to_netlist();
    println!("progressive dec.  : {}", report(&pd, &lib));

    // All three must compute parity (10 inputs — exhaustive check).
    for (name, nl) in [("flat", &flat), ("factored", &factored), ("pd", &pd)] {
        assert_eq!(
            progressive_decomposition::netlist::sim::check_equiv_anf(nl, &spec, 64, 2024),
            None,
            "{name} netlist must match the spec"
        );
    }
    println!("\nall three verified against the Reed–Muller specification ✓");
    println!(
        "\nkernel extraction shares Shannon cofactors but cannot emit XOR gates;\n\
         Progressive Decomposition works in the Boolean ring where parity is linear."
    );
}
