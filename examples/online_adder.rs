//! Theorem 1 in action: an *online algorithm* (serial adder) turned into
//! a hierarchical, logarithmic-depth circuit (the Fig. 4 construction).
//!
//! Run with: `cargo run --release --example online_adder`

use progressive_decomposition::arith::Adder;
use progressive_decomposition::core::online::{build_prefix_states, OnlineStep};
use progressive_decomposition::prelude::*;

fn main() {
    let width = 32;
    let adder = Adder::new(width);
    let lib = CellLibrary::umc130();

    // The serial adder's online step: carry' = ab if carry=0, a∨b if 1.
    let steps: Vec<OnlineStep> = (0..width)
        .map(|i| {
            let a = Anf::var(adder.a[i]);
            let b = Anf::var(adder.b[i]);
            OnlineStep {
                f0: a.and(&b),
                f1: a.or(&b),
            }
        })
        .collect();

    let mut nl = Netlist::new();
    let mut synth = Synthesizer::new();
    let states = build_prefix_states(&mut nl, &mut synth, &steps, false);
    for (i, &state) in states.iter().enumerate().take(width) {
        let a = nl.input(adder.a[i]);
        let b = nl.input(adder.b[i]);
        let p = nl.xor(a, b);
        let s = nl.xor(p, state);
        nl.set_output(&format!("s{i}"), s);
    }
    nl.set_output(&format!("s{width}"), states[width]);

    let prefix = report(&nl, &lib);
    let ripple = report(&adder.rca_netlist(), &lib);
    println!("{width}-bit adder");
    println!("  ripple description      : {ripple}");
    println!("  Theorem-1 prefix build  : {prefix}");

    // Sanity: both compute a + b (sampled).
    let av = progressive_decomposition::arith::words::random_operands(1, width, 64);
    let bv = progressive_decomposition::arith::words::random_operands(2, width, 64);
    let got = progressive_decomposition::arith::words::run_ints(
        &nl,
        &[&adder.a, &adder.b],
        &[av.clone(), bv.clone()],
        "s",
        width + 1,
    );
    for lane in 0..64 {
        assert_eq!(got[lane], av[lane] + bv[lane]);
    }
    println!("  verified on 64 random operand pairs ✓");
}
