//! The paper's motivating example: the 16-bit Leading Zero Detector.
//!
//! Builds the flat Fig. 1 description, Oklobdzija's manual Fig. 2 design
//! and Progressive Decomposition's output, compares their structure and
//! their area/delay, and shows that PD discovers the 4-bit `(V, P1, P0)`
//! blocks without being told anything about the circuit.
//!
//! Run with: `cargo run --release --example lzd_hierarchy`

use progressive_decomposition::arith::Lzd;
use progressive_decomposition::netlist::stats;
use progressive_decomposition::prelude::*;

fn main() {
    let lzd = Lzd::new(16);
    let spec = lzd.spec();
    let lib = CellLibrary::umc130();

    let flat = lzd.sop_netlist().sweep();
    let manual = lzd.oklobdzija_netlist().sweep();
    let d = ProgressiveDecomposer::new(PdConfig::default())
        .decompose(lzd.pool.clone(), spec.clone());
    assert!(d.check_equivalence(512, 1).is_none());
    let pd = d.to_netlist().sweep();

    println!("16-bit LZD — three architectures\n");
    for (name, nl) in [
        ("flat SOP (Fig. 1)", &flat),
        ("Oklobdzija (Fig. 2)", &manual),
        ("Progressive Decomposition", &pd),
    ] {
        let s = stats::stats(nl);
        let r = report(nl, &lib);
        println!("{name:<28} {r}   [{s}]");
    }

    println!("\nPD's first-level blocks (paper: identical to Oklobdzija's):");
    for b in d.blocks.iter().filter(|b| b.iteration <= 4) {
        let group: Vec<&str> = b.group.iter().map(|&v| d.pool.name(v)).collect();
        println!(
            "  group {{{}}} -> {} leaders",
            group.join(", "),
            b.basis.len() + b.passthrough.len()
        );
        for (v, e) in &b.basis {
            println!("    {} = {}", d.pool.name(*v), e.display(&d.pool));
        }
    }
}
