//! # progressive-decomposition
//!
//! A Rust reproduction of **“Progressive Decomposition: A Heuristic to
//! Structure Arithmetic Circuits”** (A. K. Verma, P. Brisk, P. Ienne —
//! DAC 2007), including every substrate the paper's toolchain relied on:
//!
//! * [`anf`] — the Boolean-ring (Reed–Muller) expression engine,
//! * [`core`] — the Progressive Decomposition heuristic itself,
//! * [`netlist`] — gate networks, synthesis from ANF, simulation,
//! * [`cells`] — a standard-cell library model, technology mapping and
//!   load-aware static timing (the Design Compiler stand-in),
//! * [`arith`] — the Table 1 benchmark circuits and manual baselines,
//! * [`bdd`] — BDD/ZDD engines for exact equivalence checking and the
//!   compact canonical ring representation of §7's future work,
//! * [`factor`] — the algebraic-factorisation (kernel extraction)
//!   baseline the paper's §2 positions as the state of the art,
//! * [`flow`] — the unified synthesis pipeline tying all of the above
//!   together, with a BDD differential-test oracle at every stage
//!   boundary.
//!
//! ## Pipeline
//!
//! The [`flow`] crate chains the substrates into the five-stage flow the
//! paper's toolchain ran end to end; every stage boundary is
//! differentially verified against the stage's input with the BDD
//! oracle (disable with `PD_SKIP_VERIFY=1` when benchmarking):
//!
//! ```text
//! ANF spec ──► decompose ──► reduce ──► factor ──► techmap ──► sta
//!             (pd-core,    (pd-core,  (pd-factor  (pd-cells   (pd-cells
//!              no §5.3/4)   full)      per block)  mapper)     timing)
//!                  │            │          │           │
//!                  ▼            ▼          ▼           ▼
//!              BDD ≡ spec   BDD ≡ prev  BDD ≡ prev  BDD ≡ prev
//! ```
//!
//! From the command line: `pd flow maj15,counter12`, `pd flow all`, or
//! `pd flow spec.json` with a [`flow::spec`] document. In code:
//!
//! ```
//! use progressive_decomposition::flow::{Flow, FlowConfig, FlowInput};
//! use progressive_decomposition::prelude::*;
//!
//! let mut pool = VarPool::new();
//! let maj7 = pd_core::examples::majority_anf(&mut pool, 7);
//! let input = FlowInput::new("maj7", pool, vec![("maj".into(), maj7)]);
//! let mut flow = Flow::new(input, FlowConfig::default());
//! let summary = flow.run_to_completion().expect("oracle green at every stage");
//! assert_eq!(summary.stages.len(), 5);
//! println!("{:.1}µm² {:.2}ns", summary.area_um2, summary.delay_ns);
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use progressive_decomposition::prelude::*;
//!
//! // Describe a circuit in Reed–Muller (XOR-of-products) form…
//! let mut pool = VarPool::new();
//! let maj7 = pd_core::examples::majority_anf(&mut pool, 7);
//!
//! // …decompose it into hierarchical building blocks…
//! let d = ProgressiveDecomposer::new(PdConfig::default())
//!     .decompose(pool, vec![("maj".into(), maj7)]);
//! assert!(d.check_equivalence(128, 0).is_none());
//!
//! // …and push it through the synthesis flow.
//! let netlist = d.to_netlist();
//! let report = report(&netlist, &CellLibrary::umc130());
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pd_anf as anf;
pub use pd_arith as arith;
pub use pd_bdd as bdd;
pub use pd_cells as cells;
pub use pd_core as core;
pub use pd_factor as factor;
pub use pd_flow as flow;
pub use pd_netlist as netlist;

/// The most common imports in one place.
pub mod prelude {
    pub use pd_anf::{Anf, Monomial, NullSpace, TruthTable, Var, VarKind, VarPool, VarSet};
    pub use pd_bdd::{interleaved_order, Bdd, Zdd};
    pub use pd_cells::{report, AreaDelayReport, CellKind, CellLibrary};
    pub use pd_core::{self, Decomposition, PdConfig, ProgressiveDecomposer, TraceEvent};
    pub use pd_factor::{ExtractConfig, FactorNetwork};
    pub use pd_flow::{Flow, FlowConfig, FlowInput, FlowSummary, StageKind};
    pub use pd_netlist::{synthesize_outputs, Gate, Netlist, NodeId, Synthesizer};
}
