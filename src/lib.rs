//! # progressive-decomposition
//!
//! A Rust reproduction of **“Progressive Decomposition: A Heuristic to
//! Structure Arithmetic Circuits”** (A. K. Verma, P. Brisk, P. Ienne —
//! DAC 2007), including every substrate the paper's toolchain relied on:
//!
//! * [`anf`] — the Boolean-ring (Reed–Muller) expression engine,
//! * [`core`] — the Progressive Decomposition heuristic itself,
//! * [`netlist`] — gate networks, synthesis from ANF, simulation,
//! * [`cells`] — a standard-cell library model, technology mapping and
//!   load-aware static timing (the Design Compiler stand-in),
//! * [`arith`] — the Table 1 benchmark circuits and manual baselines,
//! * [`bdd`] — BDD/ZDD engines for exact equivalence checking and the
//!   compact canonical ring representation of §7's future work,
//! * [`factor`] — the algebraic-factorisation (kernel extraction)
//!   baseline the paper's §2 positions as the state of the art,
//! * [`flow`] — the unified synthesis pipeline tying all of the above
//!   together, with a BDD differential-test oracle at every stage
//!   boundary.
//!
//! ## Pipeline
//!
//! The [`flow`] crate chains the substrates into the five-stage flow the
//! paper's toolchain ran end to end; every stage boundary is
//! differentially verified against the stage's input with the BDD
//! oracle (disable with `PD_SKIP_VERIFY=1` when benchmarking):
//!
//! ```text
//! ANF spec ──► decompose ──► reduce ──► factor ──► techmap ──► sta
//!             (pd-core,    (pd-core,  (pd-factor  (pd-cells   (pd-cells
//!              no §5.3/4)   refine)    global)     mapper)     timing)
//!                  │            │          │           │
//!                  ▼            ▼          ▼           ▼
//!              BDD ≡ spec   BDD ≡ prev  BDD ≡ prev  BDD ≡ prev
//! ```
//!
//! The **Reduce** stage is incremental: instead of re-running the whole
//! decomposition with the §5.3/§5.4 passes enabled (the pipeline's
//! dominant cost through PR 2), `pd_core::refine` refines the stage-1
//! hierarchy in place. A dirty-block worklist reconstructs each block's
//! pair list from its downstream consumers, runs the unchanged LinDep and
//! SizeReduce passes on it (plus a cost-gated inline of single-use
//! leaders), and re-enqueues only the blocks whose basis an applied patch
//! actually rewrote; disjoint-footprint blocks refine concurrently on the
//! `pd-par` pool. Residual non-literal outputs left by inlining are
//! re-abstracted by bounded "close" rounds of the main loop over the
//! (tiny) residue. The whole pass shares one hash-consed **divisor
//! table** of the hierarchy's leader expressions (keyed by canonical
//! monomial order): the worklist reuses an existing leader as a divisor
//! instead of minting a duplicate, and a leader-CSE sweep folds residue
//! blocks that rebuilt an existing expression onto its first
//! definition. A final *arbitration close* re-decomposes the
//! specification with refinement enabled and keeps whichever hierarchy
//! emits fewer gates, so the incremental path never maps worse than the
//! from-scratch one (this closed the historical lzd12 regression, 117
//! vs 41 cells). Every rewrite preserves `Σ inner·outer` exactly and
//! the BDD oracle re-proves the boundary, so the refined hierarchy is
//! equivalent by construction *and* by check. `PD_FULL_REDUCE=1` (or
//! [`flow::FlowConfig::full_reduce`]) restores the from-scratch re-run
//! for A/B comparison — `BENCH_RUNTIME.json` tracks both as
//! `flow/<circuit>/reduce-incremental` vs `flow/<circuit>/reduce-full`.
//!
//! The **Factor** stage is workspace-wide: every block's leaders and
//! every output enter one `pd_factor::GlobalNetwork`, whose extraction
//! loop enumerates GF(2) kernels/co-kernels and cross-cone common
//! sub-XORs over *all* cones at once, hash-conses them in the shared
//! divisor table (usage-counted, so `shared_divisors` and
//! `divisor_reuse_count` land in the stage's JSON stats), and greedily
//! commits the divisor whose saving summed over all consumers is
//! largest. Commits are priced with the synthesiser's own cost model —
//! not literal counts — so OR/majority-shaped cones the emitter maps
//! specially are left alone, and a final guard returns the unextracted
//! emission if it is smaller. `PD_LOCAL_FACTOR=1` (or
//! [`flow::FlowConfig::local_factor`]) restores the per-block path —
//! `BENCH_RUNTIME.json` tracks both as `flow/<circuit>/factor-global`
//! vs `flow/<circuit>/factor-local`, with mapped cell counts.
//!
//! ### Caching & serving
//!
//! Setting `PD_CACHE_DIR` (or [`flow::FlowConfig::cache_dir`]) turns
//! the batch pipeline into a **cacheable service**. Every completed
//! stage — netlist/hierarchy snapshot, [`flow::StageReport`], verify
//! verdict — is stored in a content-addressed [`cache`] store under a
//! chained key `H(canonical spec ‖ config fingerprint ‖ crate version)`
//! derived with [`anf::canon`]'s stable encoding, so re-running an
//! identical spec serves every stage *already BDD-verified*
//! (`"cache": "hit"`, `"verified_from_cache": true` in the stats), and
//! a changed spec resumes computing past its unchanged prefix. Results
//! that committed explicitly unverified are never stored, and a run
//! with `PD_FAULT` armed never touches the cache. The same directory
//! holds the **cross-run divisor library**
//! ([`factor::library`]): divisors each run commits are usage-counted,
//! aged (halve-and-prune) across runs, and offered as advisory seeds to
//! the next run's Reduce ranking and global-Factor search — seeds pass
//! the same acceptance guards as discovered divisors and the baseline
//! fallback still applies, so the library can only accelerate, never
//! regress or perturb determinism (the snapshot is loaded once per
//! config, identical at any `PD_THREADS`).
//!
//! `pd serve` wraps the same pipeline in a std-only TCP/JSON-lines job
//! server ([`flow::serve`]): jobs reuse the flow-spec JSON schema, and
//! the scheduler is the batch driver refactored into **sharded worker
//! pools** (`pd_par::WorkerPool`, width `PD_WORKERS`) — one job's
//! circuits run FIFO on one shard with the batch driver's panic fencing
//! and safe-config retry intact, so a poisoned job resolves to per-slot
//! errors while concurrent jobs stay green.
//!
//! ## Budgets, degradation ladders, fault injection
//!
//! Flow execution is *budgeted* and *fault-tolerant*. Effort is metered
//! deterministically — `pd_par::EffortMeter` counts **trials**
//! (candidate groups probed, divisors scored), never wall-clock, so the
//! same budget produces bit-identical results at any `PD_THREADS`.
//! `PD_BUDGET_DECOMPOSE`, `PD_BUDGET_REDUCE` and `PD_BUDGET_FACTOR` (or
//! the matching [`flow::FlowConfig`] fields / spec keys) cap each
//! stage; a stage that exhausts its meter finishes its current batch,
//! keeps its best-so-far result, and records the exhaustion in its
//! report. Within its budget, Reduce also *skips* the arbitration
//! re-decomposition when the worklist result's gate estimate is already
//! within a learned bound of the entry estimate (and serves repeated
//! specs from a process-wide arbitration cache), reclaiming the
//! incremental path's speed at the arbitrated path's quality —
//! `BENCH_RUNTIME.json` pins the pair as `flow/<circuit>/reduce-budgeted`
//! vs `flow/<circuit>/reduce-unbudgeted`.
//!
//! Every stage runs inside its own panic fence and degrades down an
//! ordered ladder of BDD-verified fallbacks instead of failing:
//!
//! ```text
//! reduce :  incremental ──► worklist-only ──► full-reduce
//! factor :  global ───────► local ──────────► skip
//! techmap:  planner ──────► greedy
//! ```
//!
//! A rung commits only after its verify boundary is green; a rung that
//! panics, runs red, or errors is discarded and the next rung starts
//! from the same pre-stage state. Any degradation is recorded in the
//! stage's report (`degraded`, `degradation_reason`) and its JSON. Only
//! when every rung of a ladder is dead does the flow return a typed
//! [`flow::FlowError`]; a batch (`pd flow all`) then retries that one
//! circuit once under the safe configuration (from-scratch Reduce,
//! per-block Factor, capacity-tolerant oracle) before reporting the
//! failure in its slot — the retry covers oracle capacity blowouts as
//! well as panics.
//!
//! ## The BDD oracle at scale: node caps and variable reordering
//!
//! The oracle's BDD manager is capped (`PD_NODE_CAP`, default 2²⁶
//! allocated slots, or [`flow::FlowConfig::node_cap`] / the spec's
//! `node_cap` key) so a hostile boundary cannot take the process down
//! with it. A check that hits the cap climbs an *order ladder* inside
//! the shared [`bdd::VerifyContext`] instead of failing outright:
//!
//! ```text
//! current order ──► FORCE pre-order ──► sift @ 4× cap ──► unverified
//! (shared mgr)      (fresh manager,     (fresh manager,   (recorded,
//!                    connectivity-       mid-build         flow goes
//!                    driven static)      Rudell sifting)   on)
//! ```
//!
//! The second rung computes a FORCE-style static order from the
//! boundary's netlist connectivity ([`bdd::force_order`]); the third
//! retries once at four times the cap with threshold-triggered
//! Rudell-style sifting ([`bdd::sift`], schedules `Once`, `Converge`,
//! `Threshold`) compacting the diagram as it grows. Orders learned by
//! any rung stay cached in the context for every later check of the
//! same flow. Only when the raised rung also overflows is the boundary
//! committed as **explicitly unverified** — `verified: false` plus a
//! `degradation_reason` naming the cap in the stage report and its
//! JSON, `NO` in the CLI table — and the flow continues instead of
//! dying; raise `PD_NODE_CAP` to decide that boundary. `PD_DVO`
//! (`off` | `on-capacity` | `sift`, or [`flow::FlowConfig::dvo`] / the
//! spec's `dvo` key) picks the policy: `off` restores the historical
//! hard [`flow::FlowError::Capacity`], `on-capacity` (the default)
//! reorders only when the cap is actually hit, and `sift` additionally
//! compacts after successful checks. Verdicts are bit-identical across
//! all three modes and every `PD_THREADS`/`PD_NAIVE_KERNEL` combination
//! (`tests/flow_pipeline.rs` pins this), and the stage reports carry
//! the oracle's `verify_peak_nodes`/`verify_reorders` counters.
//! `BENCH_RUNTIME.json` pins the capacity win itself as
//! `verify/<circuit>/verify-interleaved` vs `verify-sifted`.
//!
//! The ladders are exercised by a deterministic fault-injection
//! harness: `PD_FAULT=<stage>:<mode>[:<count>]` (modes `panic`,
//! `budget`, `mismatch`, `capacity`) makes the *count*-th injection
//! opportunity at the named stage panic, zero the stage budget, poison
//! the verify verdict, or starve the oracle's node table (re-seeding
//! the verifier so the order ladder genuinely overflows). Every mode on
//! every stage ends in a completed flow with a recorded degradation, an
//! explicitly unverified boundary, or a typed error — never a process
//! abort — and `tests/fault_injection.rs` pins the full matrix.
//!
//! From the command line: `pd flow maj15,counter12`, `pd flow all`, or
//! `pd flow spec.json` with a [`flow::spec`] document. In code:
//!
//! ```
//! use progressive_decomposition::flow::{Flow, FlowConfig, FlowInput};
//! use progressive_decomposition::prelude::*;
//!
//! let mut pool = VarPool::new();
//! let maj7 = pd_core::examples::majority_anf(&mut pool, 7);
//! let input = FlowInput::new("maj7", pool, vec![("maj".into(), maj7)]);
//! let mut flow = Flow::new(input, FlowConfig::default());
//! let summary = flow.run_to_completion().expect("oracle green at every stage");
//! assert_eq!(summary.stages.len(), 5);
//! println!("{:.1}µm² {:.2}ns", summary.area_um2, summary.delay_ns);
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use progressive_decomposition::prelude::*;
//!
//! // Describe a circuit in Reed–Muller (XOR-of-products) form…
//! let mut pool = VarPool::new();
//! let maj7 = pd_core::examples::majority_anf(&mut pool, 7);
//!
//! // …decompose it into hierarchical building blocks…
//! let d = ProgressiveDecomposer::new(PdConfig::default())
//!     .decompose(pool, vec![("maj".into(), maj7)]);
//! assert!(d.check_equivalence(128, 0).is_none());
//!
//! // …and push it through the synthesis flow.
//! let netlist = d.to_netlist();
//! let report = report(&netlist, &CellLibrary::umc130());
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pd_anf as anf;
pub use pd_arith as arith;
pub use pd_bdd as bdd;
pub use pd_cache as cache;
pub use pd_cells as cells;
pub use pd_core as core;
pub use pd_factor as factor;
pub use pd_flow as flow;
pub use pd_netlist as netlist;

/// The most common imports in one place.
pub mod prelude {
    pub use pd_anf::{Anf, Monomial, NullSpace, TruthTable, Var, VarKind, VarPool, VarSet};
    pub use pd_bdd::{interleaved_order, Bdd, Zdd};
    pub use pd_cells::{report, AreaDelayReport, CellKind, CellLibrary};
    pub use pd_core::{self, Decomposition, PdConfig, ProgressiveDecomposer, TraceEvent};
    pub use pd_factor::{ExtractConfig, FactorNetwork};
    pub use pd_flow::{Flow, FlowConfig, FlowInput, FlowSummary, StageKind};
    pub use pd_netlist::{synthesize_outputs, Gate, Netlist, NodeId, Synthesizer};
}
