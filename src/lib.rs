//! # progressive-decomposition
//!
//! A Rust reproduction of **“Progressive Decomposition: A Heuristic to
//! Structure Arithmetic Circuits”** (A. K. Verma, P. Brisk, P. Ienne —
//! DAC 2007), including every substrate the paper's toolchain relied on:
//!
//! * [`anf`] — the Boolean-ring (Reed–Muller) expression engine,
//! * [`core`] — the Progressive Decomposition heuristic itself,
//! * [`netlist`] — gate networks, synthesis from ANF, simulation,
//! * [`cells`] — a standard-cell library model, technology mapping and
//!   load-aware static timing (the Design Compiler stand-in),
//! * [`arith`] — the Table 1 benchmark circuits and manual baselines,
//! * [`bdd`] — BDD/ZDD engines for exact equivalence checking and the
//!   compact canonical ring representation of §7's future work,
//! * [`factor`] — the algebraic-factorisation (kernel extraction)
//!   baseline the paper's §2 positions as the state of the art.
//!
//! ## Quickstart
//!
//! ```
//! use progressive_decomposition::prelude::*;
//!
//! // Describe a circuit in Reed–Muller (XOR-of-products) form…
//! let mut pool = VarPool::new();
//! let maj7 = pd_core::examples::majority_anf(&mut pool, 7);
//!
//! // …decompose it into hierarchical building blocks…
//! let d = ProgressiveDecomposer::new(PdConfig::default())
//!     .decompose(pool, vec![("maj".into(), maj7)]);
//! assert!(d.check_equivalence(128, 0).is_none());
//!
//! // …and push it through the synthesis flow.
//! let netlist = d.to_netlist();
//! let report = report(&netlist, &CellLibrary::umc130());
//! println!("{report}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pd_anf as anf;
pub use pd_arith as arith;
pub use pd_bdd as bdd;
pub use pd_cells as cells;
pub use pd_core as core;
pub use pd_factor as factor;
pub use pd_netlist as netlist;

/// The most common imports in one place.
pub mod prelude {
    pub use pd_anf::{Anf, Monomial, NullSpace, TruthTable, Var, VarKind, VarPool, VarSet};
    pub use pd_bdd::{interleaved_order, Bdd, Zdd};
    pub use pd_cells::{report, AreaDelayReport, CellKind, CellLibrary};
    pub use pd_core::{self, Decomposition, PdConfig, ProgressiveDecomposer, TraceEvent};
    pub use pd_factor::{ExtractConfig, FactorNetwork};
    pub use pd_netlist::{synthesize_outputs, Gate, Netlist, NodeId, Synthesizer};
}
