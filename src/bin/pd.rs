//! `pd` — the Progressive Decomposition command-line tool.
//!
//! Reads a circuit specification in a simple text format, runs the
//! heuristic, verifies the result, and reports the hierarchy plus
//! area/delay against direct synthesis. This is the role the paper's
//! Maple front-end played.
//!
//! ```text
//! USAGE:
//!   pd [OPTIONS] <SPEC-FILE | - >
//!
//! OPTIONS:
//!   -k <N>          group size (default 4)
//!   --bare          disable all basis optimisations
//!   --trace         print the Fig. 6-style execution trace
//!   --verilog <F>   write the hierarchical netlist as Verilog to F
//!   --dot <F>       write the hierarchical netlist as Graphviz DOT to F
//!   --flat          also synthesise the flat expression for comparison
//!   --factor        also run the algebraic-factorisation baseline
//!                   (kernel extraction on the minterm SOP; <= 16 inputs)
//!   --exact         verify the emitted netlist with BDDs (exact at any
//!                   width the diagrams can hold) instead of simulation only
//!   --zdd           report the ZDD (ring) size of the specification
//!
//! SPEC FORMAT (one output per line; '#' comments):
//!   <name> = <expr>
//! where <expr> uses '^' (XOR), '*' (AND), '0', '1', parentheses and
//! identifiers. Example:
//!
//!   # full adder
//!   sum   = a ^ b ^ cin
//!   carry = a*b ^ b*cin ^ cin*a
//!
//! Files ending in `.v` are instead read as structural Verilog (the
//! subset `~ & ^ | ?:` that `pd` itself emits); the gate network is
//! converted back to Reed–Muller form and re-architected.
//! ```

use progressive_decomposition::prelude::*;
use std::io::Read as _;
use std::process::ExitCode;

struct Options {
    k: usize,
    bare: bool,
    trace: bool,
    verilog: Option<String>,
    dot: Option<String>,
    flat: bool,
    factor: bool,
    exact: bool,
    zdd: bool,
    input: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        k: 4,
        bare: false,
        trace: false,
        verilog: None,
        dot: None,
        flat: false,
        factor: false,
        exact: false,
        zdd: false,
        input: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-k" => {
                let v = args.next().ok_or("-k needs a value")?;
                opts.k = v.parse().map_err(|_| format!("bad group size {v:?}"))?;
                if opts.k == 0 {
                    return Err("group size must be positive".into());
                }
            }
            "--bare" => opts.bare = true,
            "--trace" => opts.trace = true,
            "--flat" => opts.flat = true,
            "--factor" => opts.factor = true,
            "--exact" => opts.exact = true,
            "--zdd" => opts.zdd = true,
            "--verilog" => opts.verilog = Some(args.next().ok_or("--verilog needs a path")?),
            "--dot" => opts.dot = Some(args.next().ok_or("--dot needs a path")?),
            "-h" | "--help" => {
                return Err("usage: pd [-k N] [--bare] [--trace] [--flat] [--factor] \
                            [--exact] [--zdd] [--verilog F] [--dot F] <spec-file | ->"
                    .into())
            }
            other if opts.input.is_none() => opts.input = Some(other.to_owned()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if opts.input.is_none() {
        return Err("missing spec file (use '-' for stdin); try --help".into());
    }
    Ok(opts)
}

fn read_spec(
    path: &str,
    pool: &mut VarPool,
) -> Result<Vec<(String, Anf)>, String> {
    let text = if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        s
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    if path.ends_with(".v") {
        return read_verilog_spec(&text, pool);
    }
    let mut outputs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (name, expr) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `name = expr`", lineno + 1))?;
        let name = name.trim();
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(format!("line {}: bad output name {name:?}", lineno + 1));
        }
        let expr = Anf::parse(expr, pool)
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        outputs.push((name.to_owned(), expr));
    }
    if outputs.is_empty() {
        return Err("specification defines no outputs".into());
    }
    Ok(outputs)
}

/// Imports a structural Verilog module and recovers the Reed–Muller
/// specification of each output by exact ANF extraction.
fn read_verilog_spec(text: &str, pool: &mut VarPool) -> Result<Vec<(String, Anf)>, String> {
    let nl = progressive_decomposition::netlist::from_verilog(text, pool)
        .map_err(|e| format!("verilog: {e}"))?;
    let spec = progressive_decomposition::netlist::extract::extract_anf(&nl, 1 << 22)
        .ok_or("verilog: Reed–Muller extraction exceeded the term cap")?;
    if spec.is_empty() {
        return Err("verilog module declares no outputs".into());
    }
    Ok(spec)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let mut pool = VarPool::new();
    let spec = read_spec(opts.input.as_deref().expect("validated"), &mut pool)?;
    let total_terms: usize = spec.iter().map(|(_, e)| e.term_count()).sum();
    println!(
        "{} output(s), {} variables, {} Reed–Muller terms",
        spec.len(),
        pool.len(),
        total_terms
    );

    let mut cfg = PdConfig::default().with_group_size(opts.k);
    if opts.bare {
        cfg = cfg.bare();
    }
    let t0 = std::time::Instant::now();
    let d = ProgressiveDecomposer::new(cfg).decompose(pool, spec.clone());
    println!(
        "decomposed in {:?} ({} iterations, {} blocks, {} leaders)",
        t0.elapsed(),
        d.iterations,
        d.blocks.len(),
        d.leader_count()
    );
    match d.check_equivalence(256, 0xC0DE) {
        None => println!("verification: OK (hierarchy ≡ specification)"),
        Some(m) => return Err(format!("verification FAILED: {m}")),
    }
    if opts.trace {
        println!("\n=== execution trace ===");
        print!("{}", render_trace(&d));
    }
    println!("\n=== hierarchy ===\n{}", d.hierarchy_report());

    let lib = CellLibrary::umc130();
    let nl = d.to_netlist();
    println!("PD implementation : {}", report(&nl, &lib));
    if opts.flat {
        let flat = synthesize_outputs(&spec);
        println!("flat synthesis    : {}", report(&flat, &lib));
    }
    if opts.exact {
        let order = interleaved_order(&d.pool);
        match progressive_decomposition::bdd::verify::check_netlist_vs_anf(&nl, &spec, &order) {
            Ok(None) => println!("exact (BDD)       : netlist ≡ specification ✓"),
            Ok(Some(m)) => {
                return Err(format!(
                    "exact (BDD) verification FAILED on output {:?}",
                    m.output
                ))
            }
            Err(e) => println!("exact (BDD)       : skipped ({e})"),
        }
    }
    if opts.factor {
        println!("{}", factor_baseline(&d.pool, &spec, &lib)?);
    }
    if opts.zdd {
        let mut zdd = Zdd::new();
        let roots: Vec<_> = spec.iter().map(|(_, e)| zdd.from_anf(e)).collect();
        let terms: u128 = roots.iter().map(|&r| zdd.term_count(r)).sum();
        println!(
            "ZDD (ring) form   : {} nodes for {} explicit Reed–Muller terms",
            zdd.node_count_many(&roots),
            terms
        );
    }
    if let Some(path) = &opts.verilog {
        let v = progressive_decomposition::netlist::export::to_verilog(&nl, &d.pool, "pd_top");
        std::fs::write(path, v).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote Verilog to {path}");
    }
    if let Some(path) = &opts.dot {
        let g = progressive_decomposition::netlist::export::to_dot(&nl, &d.pool, "pd_top");
        std::fs::write(path, g).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote DOT to {path}");
    }
    Ok(())
}

/// Runs kernel extraction on the minterm SOP of the specification — what
/// a conventional multi-level flow would do with the flat description.
fn factor_baseline(
    pool: &VarPool,
    spec: &[(String, Anf)],
    lib: &CellLibrary,
) -> Result<String, String> {
    use progressive_decomposition::anf::TruthTable;
    use progressive_decomposition::netlist::{Cube, Sop};
    let inputs: Vec<Var> = pool
        .iter()
        .filter(|&v| matches!(pool.kind(v), VarKind::Input { .. }))
        .collect();
    if inputs.len() > 16 {
        return Err(format!(
            "--factor needs ≤ 16 inputs (got {}): the minterm SOP would not fit",
            inputs.len()
        ));
    }
    let sops: Vec<(String, Sop)> = spec
        .iter()
        .map(|(name, expr)| {
            let tt = TruthTable::from_anf(expr, &inputs);
            let cubes = (0..tt.len())
                .filter(|&i| tt.get(i))
                .map(|i| {
                    Cube(
                        inputs
                            .iter()
                            .enumerate()
                            .map(|(j, &v)| (v, i >> j & 1 == 1))
                            .collect(),
                    )
                })
                .collect();
            (name.clone(), Sop(cubes))
        })
        .collect();
    let mut fx_pool = pool.clone();
    let mut network = FactorNetwork::from_sops(&sops);
    let before = network.literal_count();
    let stats = network.extract(&mut fx_pool, &ExtractConfig::default());
    let fx_nl = network.synthesize();
    match progressive_decomposition::netlist::sim::check_equiv_anf(&fx_nl, spec, 64, 0xFAC7) {
        None => {}
        Some(m) => return Err(format!("factorisation baseline is WRONG: {m:?}")),
    }
    Ok(format!(
        "kernel extraction : {} (SOP {} → {} literals, {} divisors)",
        report(&fx_nl, lib),
        before,
        stats.literals_after,
        stats.rounds
    ))
}

fn render_trace(d: &Decomposition) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for ev in &d.trace {
        match ev {
            TraceEvent::IterationStart {
                iteration,
                group,
                literals,
            } => {
                let names: Vec<&str> = group.iter().map(|&v| d.pool.name(v)).collect();
                let _ = writeln!(
                    out,
                    "iteration {iteration}: group {{{}}} ({literals} literals)",
                    names.join(", ")
                );
            }
            TraceEvent::IdentityFound(e) => {
                let _ = writeln!(out, "  identity {} = 0", e.display(&d.pool));
            }
            TraceEvent::Substitution(v, e) => {
                let _ = writeln!(out, "  subst {} := {}", d.pool.name(*v), e.display(&d.pool));
            }
            TraceEvent::BasisFinal(basis, _) => {
                for (v, e) in basis {
                    let _ = writeln!(out, "  leader {} = {}", d.pool.name(*v), e.display(&d.pool));
                }
            }
            _ => {}
        }
    }
    out
}
