//! `pd` — the Progressive Decomposition command-line tool.
//!
//! Reads a circuit specification in a simple text format, runs the
//! heuristic, verifies the result, and reports the hierarchy plus
//! area/delay against direct synthesis. This is the role the paper's
//! Maple front-end played.
//!
//! ```text
//! USAGE:
//!   pd [OPTIONS] <SPEC-FILE | - >
//!   pd flow [FLOW-OPTIONS] <FLOW-SPEC.json | - | NAMES>
//!   pd serve [--addr HOST:PORT] [--workers N]
//!
//! OPTIONS:
//!   -k <N>          group size (default 4)
//!   --bare          disable all basis optimisations
//!   --trace         print the Fig. 6-style execution trace
//!   --verilog <F>   write the hierarchical netlist as Verilog to F
//!   --dot <F>       write the hierarchical netlist as Graphviz DOT to F
//!   --flat          also synthesise the flat expression for comparison
//!   --factor        also run the algebraic-factorisation baseline
//!                   (kernel extraction on the minterm SOP; <= 16 inputs)
//!   --exact         verify the emitted netlist with BDDs (exact at any
//!                   width the diagrams can hold) instead of simulation only
//!   --zdd           report the ZDD (ring) size of the specification
//!
//! SPEC FORMAT (one output per line; '#' comments):
//!   <name> = <expr>
//! where <expr> uses '^' (XOR), '*' (AND), '0', '1', parentheses and
//! identifiers. Example:
//!
//!   # full adder
//!   sum   = a ^ b ^ cin
//!   carry = a*b ^ b*cin ^ cin*a
//!
//! Files ending in `.v` are instead read as structural Verilog (the
//! subset `~ & ^ | ?:` that `pd` itself emits); the gate network is
//! converted back to Reed–Muller form and re-architected.
//!
//! FLOW SUBCOMMAND: runs the full five-stage pipeline
//! (decompose → reduce → factor → techmap → STA) with BDD differential
//! verification at every stage boundary (see `pd_flow`):
//!
//!   pd flow maj15,counter12          named pd-arith generators
//!   pd flow all                      one instance of every generator
//!   pd flow spec.json                a flow-spec document (see pd_flow::spec)
//!   echo '{...}' | pd flow -         the same, from stdin
//!
//! FLOW-OPTIONS:
//!   --out F        write the per-stage JSON stats to F
//!   --no-verify    skip the BDD oracle (benchmarking; same as PD_SKIP_VERIFY=1)
//!   --full-reduce  from-scratch Reduce instead of the incremental
//!                  refinement (A/B; same as PD_FULL_REDUCE=1)
//!   --local-factor per-block Factor instead of the workspace-wide
//!                  shared-divisor network (A/B; same as PD_LOCAL_FACTOR=1)
//!   -k <N>         group size override
//!
//! Robustness knobs (environment): `PD_BUDGET_DECOMPOSE` /
//! `PD_BUDGET_REDUCE` / `PD_BUDGET_FACTOR` bound per-stage effort with
//! deterministic trial counters; `PD_NODE_CAP` bounds the BDD oracle's
//! node table and `PD_DVO` (off | on-capacity | sift) governs its
//! variable-reordering order ladder — a boundary that exhausts the whole
//! ladder at a stage's final rung is reported as explicitly unverified
//! ("NO" in the table, `"verified": false` in the stats) instead of
//! killing the flow; and `PD_FAULT=<stage>:<mode>[:<count>]` (modes:
//! panic, budget, mismatch, capacity) injects a deterministic fault to
//! exercise each stage's degradation ladder — degradations are reported
//! under the per-stage table and in the JSON stats.
//!
//! CACHING: set `PD_CACHE_DIR=<dir>` to enable the content-addressed
//! stage cache and the cross-run divisor library (see `pd_flow::cache`
//! and `pd_factor::library`). Re-running an identical spec serves every
//! stage from the store — already BDD-verified, marked
//! `"cache": "hit"` / `"verified_from_cache": true` in the stats — and
//! a changed spec resumes past its unchanged prefix. The divisors each
//! run commits are folded into `<dir>/divisors.lib` at exit and seed
//! the next run's searches. A run with `PD_FAULT` armed never touches
//! the cache.
//!
//! SERVE SUBCOMMAND: a JSON-lines-over-TCP job server around the same
//! pipeline (see `pd_flow::serve` for the protocol):
//!
//!   pd serve                         listen on 127.0.0.1:7878
//!   pd serve --addr 127.0.0.1:0      ephemeral port (printed at startup)
//!   pd serve --workers 8             worker shards (default PD_WORKERS,
//!                                    else the machine's parallelism)
//!
//! Submitted jobs reuse the flow-spec JSON schema verbatim; each job's
//! circuits run FIFO on one worker shard, so a panicking job degrades
//! to per-slot errors without disturbing concurrent jobs.
//! ```

use progressive_decomposition::prelude::*;
use std::io::Read as _;
use std::process::ExitCode;

struct Options {
    k: usize,
    bare: bool,
    trace: bool,
    verilog: Option<String>,
    dot: Option<String>,
    flat: bool,
    factor: bool,
    exact: bool,
    zdd: bool,
    input: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        k: 4,
        bare: false,
        trace: false,
        verilog: None,
        dot: None,
        flat: false,
        factor: false,
        exact: false,
        zdd: false,
        input: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-k" => {
                let v = args.next().ok_or("-k needs a value")?;
                opts.k = v.parse().map_err(|_| format!("bad group size {v:?}"))?;
                if opts.k == 0 {
                    return Err("group size must be positive".into());
                }
            }
            "--bare" => opts.bare = true,
            "--trace" => opts.trace = true,
            "--flat" => opts.flat = true,
            "--factor" => opts.factor = true,
            "--exact" => opts.exact = true,
            "--zdd" => opts.zdd = true,
            "--verilog" => opts.verilog = Some(args.next().ok_or("--verilog needs a path")?),
            "--dot" => opts.dot = Some(args.next().ok_or("--dot needs a path")?),
            "-h" | "--help" => {
                return Err("usage: pd [-k N] [--bare] [--trace] [--flat] [--factor] \
                            [--exact] [--zdd] [--verilog F] [--dot F] <spec-file | ->"
                    .into())
            }
            other if opts.input.is_none() => opts.input = Some(other.to_owned()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    if opts.input.is_none() {
        return Err("missing spec file (use '-' for stdin); try --help".into());
    }
    Ok(opts)
}

/// Reads a specification from a path or stdin, delegating to the shared
/// loaders in `pd_flow::spec` (text format, or structural Verilog for
/// `.v` files) so `pd <file>` and `pd flow <file>` parse identically.
fn read_spec(
    path: &str,
    pool: &mut VarPool,
) -> Result<Vec<(String, Anf)>, String> {
    use progressive_decomposition::flow::spec::{load_circuit, parse_text_spec};
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        return parse_text_spec(&s, pool);
    }
    let input = load_circuit(path)?;
    *pool = input.pool;
    Ok(input.outputs)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match args.first().map(String::as_str) {
        Some("flow") => run_flow(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        _ => run(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pd: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `pd flow` subcommand: resolve circuits, run the batch pipeline,
/// print per-stage tables, optionally write the JSON stats artefact.
fn run_flow(args: &[String]) -> Result<(), String> {
    use progressive_decomposition::flow::{
        batch_to_json, run_batch, FlowConfig, FlowSpec, StageReport,
    };
    let mut out_path: Option<String> = None;
    let mut no_verify = false;
    let mut full_reduce = false;
    let mut local_factor = false;
    let mut group_size: Option<usize> = None;
    let mut target: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_path = Some(it.next().ok_or("--out needs a path")?.clone());
            }
            "--no-verify" => no_verify = true,
            "--full-reduce" => full_reduce = true,
            "--local-factor" => local_factor = true,
            "-k" => {
                let v = it.next().ok_or("-k needs a value")?;
                let k = v.parse().map_err(|_| format!("bad group size {v:?}"))?;
                if k == 0 {
                    return Err("group size must be positive".into());
                }
                group_size = Some(k);
            }
            "-h" | "--help" => {
                return Err("usage: pd flow [--out F] [--no-verify] [--full-reduce] \
                            [--local-factor] [-k N] <flow-spec.json | - | NAMES>"
                    .into())
            }
            other if target.is_none() => target = Some(other.to_owned()),
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let target = target.ok_or("missing flow target (spec.json, '-', or circuit names)")?;

    // A JSON document (file or stdin) configures everything; a bare name
    // list is the quick form.
    let (inputs, mut cfg, spec_out) = if target == "-" || target.ends_with(".json") {
        let text = if target == "-" {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .map_err(|e| format!("reading stdin: {e}"))?;
            s
        } else {
            std::fs::read_to_string(&target).map_err(|e| format!("reading {target}: {e}"))?
        };
        let spec = FlowSpec::parse(&text).map_err(|e| e.to_string())?;
        for w in &spec.warnings {
            eprintln!("pd flow: warning: {w}");
        }
        (spec.resolve()?, spec.config, spec.out)
    } else {
        let mut inputs = Vec::new();
        for name in target.split(',').filter(|s| !s.is_empty()) {
            inputs.extend(progressive_decomposition::flow::spec::resolve_circuit(name)?);
        }
        if inputs.is_empty() {
            return Err("no circuits named".into());
        }
        (inputs, FlowConfig::default(), None)
    };
    if no_verify {
        cfg.verify = false;
    }
    if full_reduce {
        cfg.full_reduce = true;
    }
    if local_factor {
        cfg.local_factor = true;
    }
    if let Some(k) = group_size {
        cfg.pd.group_size = k;
    }
    let out_path = out_path.or(spec_out);

    println!(
        "pd flow: {} circuit(s), verification {}, {} worker thread(s)",
        inputs.len(),
        if cfg.verify { "on" } else { "off" },
        pd_par::max_threads(),
    );
    if let Some(dir) = &cfg.cache_dir {
        println!(
            "pd flow: stage cache at {} ({} library divisor(s) seeding)",
            dir.display(),
            cfg.divisor_library.as_ref().map_or(0, |l| l.len()),
        );
    }
    let t0 = std::time::Instant::now();
    let outcomes = run_batch(inputs, &cfg);
    let elapsed = t0.elapsed();
    if let Some(dir) = &cfg.cache_dir {
        // Fold this run's committed divisors into the cross-run library.
        match progressive_decomposition::factor::library::flush_learned(dir) {
            Ok(n) => println!("pd flow: divisor library now holds {n} entry(ies)"),
            Err(e) => eprintln!("pd flow: warning: library flush failed: {e}"),
        }
        let (hits, stages): (usize, usize) = outcomes
            .iter()
            .filter_map(|o| o.result.as_ref().ok())
            .flat_map(|s| s.stages.iter())
            .fold((0, 0), |(h, n), s| {
                (h + usize::from(s.cache.as_deref() == Some("hit")), n + 1)
            });
        println!("pd flow: stage cache served {hits}/{stages} stage(s)");
    }

    let fmt_opt_usize = |o: Option<usize>| o.map_or(String::from("-"), |v| v.to_string());
    let mut failures = 0usize;
    for o in &outcomes {
        match &o.result {
            Ok(summary) => {
                println!(
                    "\ncircuit {}: {} inputs, {} spec literals",
                    summary.name, summary.inputs, summary.spec_literals
                );
                println!(
                    "  {:<10} {:>10} {:>10} {:>4} {:>9} {:>7} {:>7} {:>10} {:>8}",
                    "stage", "wall ms", "verify ms", "ok", "literals", "gates", "cells", "area", "delay"
                );
                for s in &summary.stages {
                    let StageReport {
                        stage,
                        wall_ms,
                        verify_ms,
                        verified,
                        literals,
                        gates,
                        cells,
                        area_um2,
                        delay_ns,
                        ..
                    } = s;
                    println!(
                        "  {:<10} {:>10.3} {:>10.3} {:>4} {:>9} {:>7} {:>7} {:>10} {:>8}",
                        stage.name(),
                        wall_ms,
                        verify_ms,
                        match verified {
                            Some(true) => "yes",
                            Some(false) => "NO",
                            None => "-",
                        },
                        fmt_opt_usize(*literals),
                        fmt_opt_usize(*gates),
                        fmt_opt_usize(*cells),
                        area_um2.map_or(String::from("-"), |v| format!("{v:.1}µm²")),
                        delay_ns.map_or(String::from("-"), |v| format!("{v:.2}ns")),
                    );
                    if s.degraded.is_some() || s.degradation_reason.is_some() {
                        println!(
                            "  {:<10} ! degraded to {} ({})",
                            "",
                            s.degraded.as_deref().unwrap_or("<same rung>"),
                            s.degradation_reason.as_deref().unwrap_or("no reason recorded"),
                        );
                    }
                }
            }
            Err(e) => {
                failures += 1;
                println!("\ncircuit {}: FAILED — {e}", o.name);
            }
        }
    }
    if let Some(path) = &out_path {
        let doc = batch_to_json(&outcomes, &cfg).pretty();
        std::fs::write(path, doc).map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nwrote flow stats to {path}");
    }
    println!(
        "\nflow finished in {elapsed:?}: {}/{} circuits clean",
        outcomes.len() - failures,
        outcomes.len()
    );
    if failures > 0 {
        return Err(format!("{failures} circuit(s) failed the flow"));
    }
    Ok(())
}

/// The `pd serve` subcommand: bind the TCP job server and run its accept
/// loop until a `shutdown` request (see `pd_flow::serve`).
fn run_serve(args: &[String]) -> Result<(), String> {
    use progressive_decomposition::flow::serve::{env_workers, Server};
    let mut addr = String::from("127.0.0.1:7878");
    let mut workers = env_workers();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => addr = it.next().ok_or("--addr needs HOST:PORT")?.clone(),
            "--workers" => {
                let v = it.next().ok_or("--workers needs a count")?;
                workers = v.parse().map_err(|_| format!("bad worker count {v:?}"))?;
                if workers == 0 {
                    return Err("worker count must be positive".into());
                }
            }
            "-h" | "--help" => {
                return Err("usage: pd serve [--addr HOST:PORT] [--workers N]".into())
            }
            other => return Err(format!("unexpected argument {other:?}")),
        }
    }
    let server = Server::bind(addr.as_str(), workers)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    println!(
        "pd serve: listening on {bound} with {} worker shard(s)",
        server.workers()
    );
    if let Some(dir) = std::env::var_os("PD_CACHE_DIR") {
        println!(
            "pd serve: stage cache at {}",
            std::path::Path::new(&dir).display()
        );
    }
    server.run().map_err(|e| e.to_string())
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let mut pool = VarPool::new();
    let spec = read_spec(opts.input.as_deref().expect("validated"), &mut pool)?;
    let total_terms: usize = spec.iter().map(|(_, e)| e.term_count()).sum();
    println!(
        "{} output(s), {} variables, {} Reed–Muller terms",
        spec.len(),
        pool.len(),
        total_terms
    );

    let mut cfg = PdConfig::default().with_group_size(opts.k);
    if opts.bare {
        cfg = cfg.bare();
    }
    let t0 = std::time::Instant::now();
    let d = ProgressiveDecomposer::new(cfg).decompose(pool, spec.clone());
    println!(
        "decomposed in {:?} ({} iterations, {} blocks, {} leaders)",
        t0.elapsed(),
        d.iterations,
        d.blocks.len(),
        d.leader_count()
    );
    match d.check_equivalence(256, 0xC0DE) {
        None => println!("verification: OK (hierarchy ≡ specification)"),
        Some(m) => return Err(format!("verification FAILED: {m}")),
    }
    if opts.trace {
        println!("\n=== execution trace ===");
        print!("{}", render_trace(&d));
    }
    println!("\n=== hierarchy ===\n{}", d.hierarchy_report());

    let lib = CellLibrary::umc130();
    let nl = d.to_netlist();
    println!("PD implementation : {}", report(&nl, &lib));
    if opts.flat {
        let flat = synthesize_outputs(&spec);
        println!("flat synthesis    : {}", report(&flat, &lib));
    }
    if opts.exact {
        let order = interleaved_order(&d.pool);
        match progressive_decomposition::bdd::verify::check_netlist_vs_anf(&nl, &spec, &order) {
            Ok(None) => println!("exact (BDD)       : netlist ≡ specification ✓"),
            Ok(Some(m)) => {
                return Err(format!(
                    "exact (BDD) verification FAILED on output {:?}",
                    m.output
                ))
            }
            Err(e) => println!("exact (BDD)       : skipped ({e})"),
        }
    }
    if opts.factor {
        println!("{}", factor_baseline(&d.pool, &spec, &lib)?);
    }
    if opts.zdd {
        let mut zdd = Zdd::new();
        let roots: Vec<_> = spec.iter().map(|(_, e)| zdd.from_anf(e)).collect();
        let terms: u128 = roots.iter().map(|&r| zdd.term_count(r)).sum();
        println!(
            "ZDD (ring) form   : {} nodes for {} explicit Reed–Muller terms",
            zdd.node_count_many(&roots),
            terms
        );
    }
    if let Some(path) = &opts.verilog {
        let v = progressive_decomposition::netlist::export::to_verilog(&nl, &d.pool, "pd_top");
        std::fs::write(path, v).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote Verilog to {path}");
    }
    if let Some(path) = &opts.dot {
        let g = progressive_decomposition::netlist::export::to_dot(&nl, &d.pool, "pd_top");
        std::fs::write(path, g).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote DOT to {path}");
    }
    Ok(())
}

/// Runs kernel extraction on the minterm SOP of the specification — what
/// a conventional multi-level flow would do with the flat description.
fn factor_baseline(
    pool: &VarPool,
    spec: &[(String, Anf)],
    lib: &CellLibrary,
) -> Result<String, String> {
    use progressive_decomposition::anf::TruthTable;
    use progressive_decomposition::netlist::{Cube, Sop};
    let inputs: Vec<Var> = pool
        .iter()
        .filter(|&v| matches!(pool.kind(v), VarKind::Input { .. }))
        .collect();
    if inputs.len() > 16 {
        return Err(format!(
            "--factor needs ≤ 16 inputs (got {}): the minterm SOP would not fit",
            inputs.len()
        ));
    }
    let sops: Vec<(String, Sop)> = spec
        .iter()
        .map(|(name, expr)| {
            let tt = TruthTable::from_anf(expr, &inputs);
            let cubes = (0..tt.len())
                .filter(|&i| tt.get(i))
                .map(|i| {
                    Cube(
                        inputs
                            .iter()
                            .enumerate()
                            .map(|(j, &v)| (v, i >> j & 1 == 1))
                            .collect(),
                    )
                })
                .collect();
            (name.clone(), Sop(cubes))
        })
        .collect();
    let mut fx_pool = pool.clone();
    let mut network = FactorNetwork::from_sops(&sops);
    let before = network.literal_count();
    let stats = network.extract(&mut fx_pool, &ExtractConfig::default());
    let fx_nl = network.synthesize();
    match progressive_decomposition::netlist::sim::check_equiv_anf(&fx_nl, spec, 64, 0xFAC7) {
        None => {}
        Some(m) => return Err(format!("factorisation baseline is WRONG: {m:?}")),
    }
    Ok(format!(
        "kernel extraction : {} (SOP {} → {} literals, {} divisors)",
        report(&fx_nl, lib),
        before,
        stats.literals_after,
        stats.rounds
    ))
}

fn render_trace(d: &Decomposition) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for ev in &d.trace {
        match ev {
            TraceEvent::IterationStart {
                iteration,
                group,
                literals,
            } => {
                let names: Vec<&str> = group.iter().map(|&v| d.pool.name(v)).collect();
                let _ = writeln!(
                    out,
                    "iteration {iteration}: group {{{}}} ({literals} literals)",
                    names.join(", ")
                );
            }
            TraceEvent::IdentityFound(e) => {
                let _ = writeln!(out, "  identity {} = 0", e.display(&d.pool));
            }
            TraceEvent::Substitution(v, e) => {
                let _ = writeln!(out, "  subst {} := {}", d.pool.name(*v), e.display(&d.pool));
            }
            TraceEvent::BasisFinal(basis, _) => {
                for (v, e) in basis {
                    let _ = writeln!(out, "  leader {} = {}", d.pool.name(*v), e.display(&d.pool));
                }
            }
            _ => {}
        }
    }
    out
}
